// Package gateway implements the multi-tenant DP-Sync serving layer: one
// TCP endpoint hosting thousands of concurrent data owners, each with its
// own namespace — a private encrypted store, a private update-pattern
// transcript, and a private logical clock — against a single honest-but-
// curious operator, the deployment shape of the paper's §3 three-party
// model at "heavy traffic" scale.
//
// # Architecture
//
// Owner state is sharded: owner IDs hash onto a fixed set of shard workers
// (bounded by GOMAXPROCS), and each shard worker goroutine *owns* its
// tenants' state outright — tenant maps are touched by exactly one
// goroutine, so unrelated owners never contend on a lock and per-owner
// request order is the order frames arrived in. Connections are decoupled
// from owners: a connection reader decodes multiplexed envelopes
// (wire.GatewayRequest: request ID + owner namespace + EDB message) and
// hands them to the owning shard; a per-connection writer streams the
// shards' responses back, matched by request ID, so one pipelined
// connection can carry many owners' sync batches concurrently.
//
// # Isolation invariant
//
// Each tenant's update-pattern transcript is exactly what the single-owner
// internal/server would have observed for that owner's request stream: the
// per-owner logical clock advances only on that owner's uploads, and no
// other tenant's traffic can perturb it. The differential test in this
// package pins the transcripts bit-identical. This is the property that
// makes per-owner DP accounting meaningful on shared infrastructure — the
// adversary (the gateway operator) sees the union of per-owner transcripts,
// and each one independently carries its owner's ε guarantee.
//
// # Substrates
//
// Tenants are backed by any edb.Database. Backends that ingest sealed
// ciphertexts directly (the ObliDB enclave: SetupSealed/UpdateSealed) get
// them verbatim — the gateway never opens records destined for an enclave.
// Backends without a sealed path (the Cryptε aggregation service, including
// WithRealAHE true-crypto instances) receive records through the gateway's
// ingress sealer, standing in for the aggregation service's transport
// decryption boundary.
package gateway

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpsync/internal/dp"
	"dpsync/internal/edb"
	"dpsync/internal/leakage"
	"dpsync/internal/oblidb"
	"dpsync/internal/seal"
	"dpsync/internal/store"
	"dpsync/internal/telemetry"
	"dpsync/internal/wire"
)

// Defaults mirroring internal/server's connection hardening, plus the
// gateway-specific knobs.
const (
	// DefaultMaxOwners bounds distinct tenant namespaces so a hostile
	// client cannot allocate unbounded backend state.
	DefaultMaxOwners = 1 << 20
	// DefaultWriteTimeout bounds one response frame's write, so a client
	// that stops reading cannot stall a shard worker behind a full response
	// queue forever.
	DefaultWriteTimeout = 30 * time.Second
	// DefaultMaxInFlight is the per-connection in-flight request cap: how
	// many admitted requests may be awaiting responses before further
	// frames are refused with a typed backpressure response. It is sized
	// above the client's default pipeline window so well-behaved clients
	// never see a shed; the response buffer is sized to this cap plus
	// shedHeadroom, which is what lets shard workers reply without ever
	// blocking on a slow connection.
	DefaultMaxInFlight = 256
	// shedHeadroom is the grace window past the in-flight cap: how many
	// refusals (backpressure replies, which also occupy response-buffer
	// slots) may be outstanding before the connection is severed as
	// hostile — a client that keeps blasting frames while ignoring both
	// its window and the shed signal.
	shedHeadroom = 64
	// DefaultDrainTimeout bounds Close's wait for in-flight connections;
	// survivors are severed (logged) so one stuck peer cannot wedge a
	// graceful shutdown.
	DefaultDrainTimeout = 10 * time.Second
	// shardQueueLen is the per-shard task buffer. When a shard saturates,
	// connection readers block on the send — backpressure propagates to the
	// TCP receive window instead of growing a queue.
	shardQueueLen = 128
	// completionQueueLen is the per-shard buffer for WAL commit callbacks
	// hopping from the log writer back onto the shard worker. The worker
	// always drains it (it never blocks on sends), so the WAL writer cannot
	// deadlock against it; the buffer just decouples commit bursts.
	completionQueueLen = 256
	// DefaultSnapshotEvery is the per-shard WAL entry count between
	// snapshot rotations in durable mode.
	DefaultSnapshotEvery = 1024
	// maxErrorLogs bounds per-connection error logging.
	maxErrorLogs = 3
)

// Config assembles a Gateway.
type Config struct {
	// Key is the 32-byte shared data key (the attestation/provisioning
	// stand-in) used by the default ObliDB backend and by the ingress
	// sealer for record-level backends. Required unless NewBackend is set
	// AND every backend ingests sealed ciphertexts.
	Key []byte
	// Shards is the number of shard workers; 0 means GOMAXPROCS.
	Shards int
	// NewBackend constructs the encrypted database for a new owner
	// namespace. Nil means a per-owner ObliDB instance under Key.
	NewBackend func(owner string) (edb.Database, error)
	// Logger receives bounded per-connection diagnostics; nil discards.
	Logger *slog.Logger
	// Telemetry receives the gateway's hot-path runtime metrics (per-sync
	// stage latency histograms, serving-edge counters, the fleet ε-spent
	// distribution) and is threaded into the store. Nil disables metric
	// export entirely — handles no-op — which is what keeps unrelated
	// gateways in one test process from merging series.
	Telemetry *telemetry.Registry
	// DebugTenantMetrics exposes per-owner introspection series (committed
	// clock and ε spend, labeled by owner hash) through Telemetry. Off by
	// default and meant to stay off outside debugging: per-tenant series
	// republish exactly the update-pattern detail the synchronization
	// strategies spend ε to hide, so the aggregate-only default is part of
	// the privacy posture, not a convenience.
	DebugTenantMetrics bool
	// Tracer, when non-nil, samples per-request span trees: client-admit at
	// admission, queue-wait and apply on the shard worker, the WAL group
	// commit, and (through the Replicator) the replication ship. The
	// sampling decision is one atomic add per request; unsampled requests
	// allocate nothing. Traces follow the same privacy rule as metrics —
	// span names are stage names, and tenant identity (owner hash only)
	// appears on a trace only when DebugTenantMetrics is also set.
	Tracer *telemetry.Tracer
	// ReadTimeout is the per-connection read deadline (0 = default,
	// negative = disabled); MaxFrameErrors bounds malformed frames per
	// connection (0 = default).
	ReadTimeout    time.Duration
	WriteTimeout   time.Duration
	MaxFrameErrors int
	// MaxInFlight caps admitted-but-unanswered requests per connection
	// (0 = DefaultMaxInFlight). Excess frames get typed backpressure
	// responses; a connection that accumulates shedHeadroom unanswered
	// refusals on top of the cap is severed.
	MaxInFlight int
	// DrainTimeout bounds Close's graceful wait for in-flight connections
	// before severing the stragglers (0 = DefaultDrainTimeout, negative =
	// wait forever, the pre-hardening behavior).
	DrainTimeout time.Duration
	// MaxOwners bounds distinct namespaces (0 = DefaultMaxOwners).
	MaxOwners int
	// StoreDir enables the durability subsystem (internal/store): every
	// tenant's sealed store, transcript, logical clock, and ε ledger are
	// carried by per-shard write-ahead logs and snapshots under this
	// directory, and New recovers whatever a previous process left there.
	// Empty keeps today's in-memory behavior.
	StoreDir string
	// Fsync makes every durable group commit fsync (machine-crash safety);
	// off, commits are flushed to the OS (process-crash safety).
	Fsync bool
	// SnapshotEvery is the per-shard WAL entry count between snapshot
	// rotations (0 = DefaultSnapshotEvery).
	SnapshotEvery int
	// HistoryWindow bounds the committed ingest batches each tenant keeps
	// in RAM (and inlines in snapshots). Past the window, history spills to
	// sealed on-disk history segments; snapshots reference the spilled runs
	// by manifest (segment, offset, length, checksum) so rotation I/O is
	// O(delta), and recovery streams the runs back through the ingest path
	// without materializing them. 0 keeps the full history in RAM and
	// inline in snapshots (the legacy small-deployment behavior). Durable
	// mode only.
	HistoryWindow int
	// SyncEpsilon is the ε charged to a tenant's ledger per sync (setup or
	// update), recorded inside the sync's WAL entry so recovery re-spends
	// exactly what was spent. Changing it against an existing store makes
	// recovered tenants refuse further syncs (the ledger rejects a charge
	// whose epsilon drifted) — by design, accounting drift is loud.
	SyncEpsilon float64
	// QueryCache is the per-tenant noise-reuse answer cache capacity in
	// entries (0 = qcache.DefaultCapacity, negative disables). A released DP
	// answer is already noised — re-serving the identical bytes to the
	// identical QuerySpec is pure post-processing and costs zero additional
	// ε — so each tenant caches its released answers and the shard worker
	// serves repeats without touching the backend. The cache is RAM-only and
	// invalidated when the owner's next sync *commits* (never at apply), so
	// a cached answer cannot outlive the state transition that could change
	// it and a crash cannot resurrect a stale entry.
	QueryCache int
	// Listener, when non-nil, is a pre-bound listener the gateway adopts
	// instead of binding addr — how a promoting cluster follower hands the
	// address it was already refusing clients on to its new gateway without
	// a bind race. The gateway owns it from New on (Close closes it).
	Listener net.Listener
	// Replicator, when non-nil, taps the durable commit stream for WAL
	// shipping (internal/cluster's primary hub): every committed sync entry
	// is offered in commit order on its shard worker, and connections whose
	// hello opens the replication protocol are handed over to it. Requires
	// StoreDir — replication ships WAL frames, so there must be a WAL.
	Replicator Replicator
}

// Replicator is the gateway's hook into a replication hub. Implementations
// live in internal/cluster; the gateway only defines the seam so the
// dependency points outward.
type Replicator interface {
	// Committed observes one durably committed sync entry. It is invoked on
	// the owning shard's worker goroutine, in that shard's commit order,
	// after the entry's group commit and the tenant's commit-time mutations
	// — so a cut taken on the same worker and the offsets assigned here can
	// never disagree. It must not block: slow followers shed themselves, not
	// the fleet. tc is the entry's trace context positioned at its WAL-commit
	// span (zero when the sync is unsampled): a hub records its ship span
	// under it and propagates the trace across the wire.
	Committed(shard int, e store.Entry, tc telemetry.TraceContext)
	// ServeConn takes over a connection whose hello opened the replication
	// protocol (the hello itself is consumed; version is its proposed
	// version byte, not yet acked). Runs on the connection's handler
	// goroutine and owns the conn until it returns; the gateway severs the
	// conn to force an exit at shutdown.
	ServeConn(conn net.Conn, version byte)
}

// replFlusher is the optional Replicator extension a graceful Close probes
// for: Flush blocks (bounded by timeout) until connected followers have
// consumed the committed stream, so syncs committed during the drain window
// reach the successor instead of surviving only in clients' resync windows.
type replFlusher interface {
	Flush(timeout time.Duration)
}

// Gateway is the multi-tenant server. Create with New, drive with Serve,
// stop with Close.
type Gateway struct {
	cfg    Config
	lis    net.Listener
	log    *slog.Logger
	sealer *seal.Sealer // ingress for record-level backends; nil without Key
	store  *store.Store // durability subsystem; nil without StoreDir
	tm     gwMetrics    // telemetry handles; zero value no-ops

	shards     []*shard
	quit       chan struct{}
	ownerCount atomic.Int64
	sheds      atomic.Int64 // backpressure refusals across all connections
	severed    atomic.Int64 // connections severed as hostile/stalled
	liveConns  atomic.Int64 // currently open client connections
	liveRepl   atomic.Int64 // currently open replication connections

	connWG  sync.WaitGroup
	replWG  sync.WaitGroup // replication handlers, drained separately
	shardWG sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	// replConns tracks connections serving the replication protocol. They
	// are long-lived by design (a follower tails forever), so a graceful
	// Close never drains them: after the client drain it flushes the
	// replicator (shipping the drain window's commits) and severs them — a
	// follower reconnects from its cursor; it must never wedge a primary's
	// shutdown.
	replConns map[net.Conn]struct{}
	closed    bool
	abandon   bool
}

// gwMetrics holds the gateway's telemetry handles, resolved once at New so
// the hot path touches only atomics. on gates the time.Now() calls the
// stage decomposition needs, so a telemetry-less gateway pays nothing.
type gwMetrics struct {
	on      bool
	syncs   *telemetry.Counter
	queries *telemetry.Counter
	resumes *telemetry.Counter
	qwait   *telemetry.Histogram // task enqueue → shard worker dequeue
	apply   *telemetry.Histogram // backend ingest (validate + seal + apply)
	commit  *telemetry.Histogram // WAL append → group-commit completion
	ack     *telemetry.Histogram // response enqueue → frame on the wire
	eps     *telemetry.Distribution
	// Noise-reuse answer cache counters (fleet aggregates — per-owner cache
	// behavior is exactly the update/query pattern the aggregate-only
	// posture suppresses) and the cache-served stage latency.
	qcHits  *telemetry.Counter
	qcMiss  *telemetry.Counter
	qcEvict *telemetry.Counter
	qcInval *telemetry.Counter
	qcServe *telemetry.Histogram // shard-worker dequeue → cache-served response
	unreg   func()
}

// timedResponse is one response queued for a connection writer, carrying its
// enqueue timestamp (UnixNano; 0 when telemetry is off) so the writer can
// observe the ack stage — response enqueue to frame on the wire — and the
// request's trace context so the writer can finish the trace once the frame
// is actually on the wire.
type timedResponse struct {
	resp wire.GatewayResponse
	enq  int64
	tc   telemetry.TraceContext
}

// New creates a gateway listening on addr (port 0 picks a free port).
func New(addr string, cfg Config) (*Gateway, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 2 * time.Minute
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.MaxFrameErrors <= 0 {
		cfg.MaxFrameErrors = 8
	}
	if cfg.MaxOwners <= 0 {
		cfg.MaxOwners = DefaultMaxOwners
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.Replicator != nil && cfg.StoreDir == "" {
		return nil, fmt.Errorf("gateway: Replicator requires StoreDir (replication ships WAL frames)")
	}
	g := &Gateway{cfg: cfg, quit: make(chan struct{}), conns: map[net.Conn]struct{}{}, replConns: map[net.Conn]struct{}{}}
	if cfg.Logger != nil {
		g.log = cfg.Logger
	} else {
		g.log = telemetry.Discard()
	}
	if reg := cfg.Telemetry; reg != nil {
		g.tm = gwMetrics{
			on:      true,
			syncs:   reg.Counter("gateway_syncs_total", "committed sync uploads (setup + update)"),
			queries: reg.Counter("gateway_queries_total", "served query requests"),
			resumes: reg.Counter("gateway_resumes_total", "resume handshakes answered"),
			qwait: reg.Histogram("gateway_sync_queue_wait_us",
				"request enqueue to shard-worker dequeue, microseconds", telemetry.LatencyBucketsUs),
			apply: reg.Histogram("gateway_sync_apply_us",
				"backend ingest (validate+seal+apply), microseconds", telemetry.LatencyBucketsUs),
			commit: reg.Histogram("gateway_sync_commit_us",
				"WAL append to group-commit completion, microseconds", telemetry.LatencyBucketsUs),
			ack: reg.Histogram("gateway_sync_ack_us",
				"response enqueue to frame written on the wire, microseconds", telemetry.LatencyBucketsUs),
			eps: reg.Distribution("gateway_tenant_eps_spent",
				"fleet-wide distribution of cumulative per-tenant epsilon spend", telemetry.EpsilonBuckets),
			qcHits:  reg.Counter("gateway_qcache_hits_total", "queries served from the noise-reuse answer cache (zero additional epsilon)"),
			qcMiss:  reg.Counter("gateway_qcache_misses_total", "queries evaluated against the backend (cache cold or invalidated)"),
			qcEvict: reg.Counter("gateway_qcache_evictions_total", "answer-cache entries evicted by the LFU capacity bound"),
			qcInval: reg.Counter("gateway_qcache_invalidations_total", "answer-cache entries dropped by a committed sync"),
			qcServe: reg.Histogram("gateway_qcache_serve_us",
				"cache-hit query service time on the shard worker, microseconds", telemetry.LatencyBucketsUs),
		}
		g.tm.unreg = reg.RegisterCollector(func(emit func(telemetry.Sample)) {
			gauge := func(name, help string, v float64) {
				emit(telemetry.Sample{Name: name, Help: help, Kind: telemetry.KindGauge, Value: v})
			}
			counter := func(name, help string, v int64) {
				emit(telemetry.Sample{Name: name, Help: help, Kind: telemetry.KindCounter, Value: float64(v)})
			}
			gauge("gateway_owners", "established tenant namespaces", float64(g.ownerCount.Load()))
			gauge("gateway_active_conns", "open client connections", float64(g.liveConns.Load()))
			gauge("gateway_repl_conns", "open replication connections", float64(g.liveRepl.Load()))
			counter("gateway_sheds_total", "typed backpressure refusals", g.sheds.Load())
			counter("gateway_severed_total", "connections severed (stalled writer, spent grace window, drain deadline)", g.severed.Load())
			var pending, committed int64
			for _, sh := range g.shards {
				pending += sh.pendingAtomic.Load()
				committed += sh.committedAtomic.Load()
			}
			gauge("gateway_pending_wal_entries", "appended-but-uncommitted WAL entries across shards", float64(pending))
			counter("gateway_committed_entries_total", "committed sync entries across shards", committed)
			if cfg.Tracer != nil {
				sampled, slow := cfg.Tracer.Stats()
				counter("gateway_traces_sampled_total", "requests captured by the trace sampler", sampled)
				counter("gateway_traces_slow_total", "slow-sync exemplars captured past the threshold", slow)
			}
		})
		if cfg.DebugTenantMetrics {
			// Per-owner series, behind the explicit debug gate only: they
			// reveal exactly the per-tenant update-pattern detail the
			// aggregate-by-default rule exists to suppress. Labeled by owner
			// hash; the scrape runs owner cuts on the shard workers, so a
			// debug scrape trades latency for a commit-consistent view.
			unregMain := g.tm.unreg
			var unregDebug func()
			g.tm.unreg = func() { unregMain(); unregDebug() }
			unregDebug = reg.RegisterCollector(func(emit func(telemetry.Sample)) {
				for sid := range g.shards {
					g.OwnerCut(sid, func(states []store.OwnerState) {
						for _, st := range states {
							h := telemetry.OwnerHash(st.Owner)
							emit(telemetry.Sample{
								Name: fmt.Sprintf("gateway_tenant_clock{owner_hash=%q}", h),
								Help: "per-owner committed logical clock (DebugTenantMetrics)",
								Kind: telemetry.KindGauge, Value: float64(st.Clock),
							})
							emit(telemetry.Sample{
								Name: fmt.Sprintf("gateway_tenant_eps{owner_hash=%q}", h),
								Help: "per-owner cumulative epsilon spend (DebugTenantMetrics)",
								Kind: telemetry.KindGauge, Value: st.Budget.Spent(),
							})
						}
					})
				}
			})
		}
	}
	if len(cfg.Key) > 0 {
		s, err := seal.NewSealer(cfg.Key)
		if err != nil {
			return nil, fmt.Errorf("gateway: %w", err)
		}
		g.sealer = s
	}
	if cfg.NewBackend == nil {
		if g.sealer == nil {
			return nil, fmt.Errorf("gateway: default ObliDB backend requires Key")
		}
		g.cfg.NewBackend = func(string) (edb.Database, error) {
			return oblidb.NewWithKey(cfg.Key)
		}
	}
	g.shards = make([]*shard, cfg.Shards)
	for i := range g.shards {
		g.shards[i] = &shard{
			id:            i,
			tasks:         make(chan task, shardQueueLen),
			completions:   make(chan func(), completionQueueLen),
			owners:        map[string]*tenant{},
			snapThreshold: cfg.SnapshotEvery,
		}
	}
	if cfg.StoreDir != "" {
		if err := g.openStore(); err != nil {
			return nil, err
		}
	}
	if cfg.Listener != nil {
		g.lis = cfg.Listener
	} else {
		lis, err := net.Listen("tcp", addr)
		if err != nil {
			if g.store != nil {
				g.store.Close()
			}
			return nil, fmt.Errorf("gateway: listen: %w", err)
		}
		g.lis = lis
	}
	for _, sh := range g.shards {
		g.shardWG.Add(1)
		go g.runShard(sh)
	}
	return g, nil
}

// openStore opens the durability directory and rebuilds every recovered
// tenant — backend (by re-ingesting the batch history), transcript, clock,
// and ledger — onto its shard, before any worker or connection exists.
func (g *Gateway) openStore() error {
	s, states, err := store.Open(store.Options{
		Dir:           g.cfg.StoreDir,
		Shards:        g.cfg.Shards,
		Fsync:         g.cfg.Fsync,
		HistoryWindow: g.cfg.HistoryWindow,
		Telemetry:     g.cfg.Telemetry,
	})
	if err != nil {
		return fmt.Errorf("gateway: %w", err)
	}
	g.store = s
	owners := make([]string, 0, len(states))
	for owner := range states {
		owners = append(owners, owner)
	}
	sort.Strings(owners) // deterministic rebuild order
	for _, owner := range owners {
		tn, err := g.replayOwner(states[owner])
		if err != nil {
			s.Close()
			return err
		}
		g.shards[store.ShardFor(owner, g.cfg.Shards)].owners[owner] = tn
		g.ownerCount.Add(1)
	}
	// Re-derive each shard's rotation threshold from its recovered history
	// so a mature store does not immediately re-snapshot at the configured
	// minimum interval. The size is the shards' durable entry counts (the
	// committed clocks) — never len(tn.history), which is only the in-RAM
	// tail once history is split between RAM and spill segments and would
	// double-count (or drop) whatever the window moved.
	for _, sh := range g.shards {
		committed := sh.committedEntries()
		sh.snapThreshold = nextSnapThreshold(g.cfg.SnapshotEvery, g.cfg.HistoryWindow, committed)
		sh.committedAtomic.Store(int64(committed))
	}
	if g.tm.on {
		for _, sh := range g.shards {
			for _, tn := range sh.owners {
				tn.epsSpent = tn.budget.Spent()
				g.tm.eps.Add(tn.epsSpent)
			}
		}
	}
	if info := s.Info(); info.Owners > 0 || info.CorruptSegments > 0 || info.DamagedHistory > 0 {
		g.log.Info("recovered durable store",
			"owners", info.Owners, "snapshots", info.Snapshots, "entries", info.Entries,
			"skipped", info.SkippedEntries, "torn_tails", info.TornTails,
			"corrupt_segments", info.CorruptSegments, "spilled_refs", info.SpilledRefs,
			"damaged_history", info.DamagedHistory)
	}
	return nil
}

// Addr returns the bound listen address.
func (g *Gateway) Addr() string { return g.lis.Addr().String() }

// Serve accepts connections until Close. It blocks; run it in a goroutine.
// Transient accept failures (fd exhaustion under thousands of owners,
// aborted handshakes) are retried with backoff — one bad accept must not
// tear down every tenant.
func (g *Gateway) Serve() error {
	var delay time.Duration
	for {
		conn, err := g.lis.Accept()
		if err != nil {
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else if delay *= 2; delay > time.Second {
					delay = time.Second
				}
				g.log.Warn("accept failed; retrying", "err", err, "delay", delay)
				time.Sleep(delay)
				continue
			}
			return err
		}
		delay = 0
		g.connWG.Add(1)
		go g.handle(conn) // handle owns the connWG slot (may trade it for replWG)
	}
}

// Close stops the listener, waits for in-flight connections (each of which
// waits for its pending replies — so every acknowledged durable sync has
// group-committed by then), stops the shard workers, and flushes and closes
// the WAL. This is the graceful-drain path cmd/dpsync-server runs on
// SIGINT/SIGTERM.
func (g *Gateway) Close() error {
	return g.shutdown(false)
}

// Kill stops the gateway the way a crash would: connections are severed,
// pending (un-acknowledged) durable syncs are abandoned, nothing further is
// flushed. State already acknowledged is durable; everything in memory is
// lost until the next New recovers it. The crash-injection harness uses it;
// production code wants Close.
func (g *Gateway) Kill() {
	_ = g.shutdown(true)
}

func (g *Gateway) shutdown(abandon bool) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.abandon = abandon
	var open []net.Conn
	if abandon {
		for c := range g.conns {
			open = append(open, c)
		}
	}
	g.mu.Unlock()
	err := g.lis.Close()
	if abandon {
		for _, c := range open {
			_ = c.Close()
		}
		if g.store != nil {
			// Fail the in-flight appends now, so handlers waiting on their
			// deferred replies get error completions instead of hanging.
			g.store.Kill()
		}
	}
	if !abandon && g.cfg.DrainTimeout > 0 {
		// Graceful drain is bounded: a peer that neither finishes nor hangs
		// up (half-open, mid-pipeline stall) must not wedge shutdown. Past
		// the deadline the stragglers are severed — their handlers see read
		// errors, finish their pending replies (shards are still running),
		// and exit; acknowledged durable syncs have committed by then, so
		// severance loses nothing a crash would not.
		drained := make(chan struct{})
		go func() {
			g.connWG.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(g.cfg.DrainTimeout):
			g.mu.Lock()
			stragglers := make([]net.Conn, 0, len(g.conns))
			for c := range g.conns {
				stragglers = append(stragglers, c)
			}
			g.mu.Unlock()
			g.log.Warn("drain deadline elapsed; severing connections",
				"deadline", g.cfg.DrainTimeout, "severed", len(stragglers))
			g.severed.Add(int64(len(stragglers)))
			for _, c := range stragglers {
				_ = c.Close()
			}
		}
	}
	g.connWG.Wait()
	if !abandon {
		// Clients are drained, so the committed stream is final. Syncs that
		// committed during the drain window are still in the replication
		// rings; give connected followers a bounded chance to reach the
		// stream head — that is what makes a graceful handover lossless —
		// then sever the tails (they never finish on their own; a follower
		// rejoins whoever is primary next from its cursor).
		if fl, ok := g.cfg.Replicator.(replFlusher); ok {
			bound := g.cfg.DrainTimeout
			if bound <= 0 {
				bound = time.Second
			}
			fl.Flush(bound)
		}
		g.mu.Lock()
		repl := make([]net.Conn, 0, len(g.replConns))
		for c := range g.replConns {
			repl = append(repl, c)
		}
		g.mu.Unlock()
		for _, c := range repl {
			_ = c.Close()
		}
	}
	g.replWG.Wait()
	close(g.quit)
	g.shardWG.Wait()
	if g.store != nil && !abandon {
		if cerr := g.store.Close(); err == nil {
			err = cerr
		}
	}
	if g.tm.unreg != nil {
		g.tm.unreg()
	}
	return err
}

// Owners returns the number of tenant namespaces created so far.
func (g *Gateway) Owners() int { return int(g.ownerCount.Load()) }

// Sheds returns the total number of backpressure refusals issued across all
// connections — the fleet-health counter the load generator reports.
func (g *Gateway) Sheds() int64 { return g.sheds.Load() }

// QueryCacheStats snapshots the noise-reuse answer cache counters across
// every tenant (zero when Telemetry is disabled — the counters are the
// telemetry instruments themselves, read lock-free).
type QueryCacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
}

// QueryCacheStats returns the gateway-wide answer-cache counters — what the
// load generator reports as the cache hit ratio.
func (g *Gateway) QueryCacheStats() QueryCacheStats {
	return QueryCacheStats{
		Hits:          g.tm.qcHits.Value(),
		Misses:        g.tm.qcMiss.Value(),
		Evictions:     g.tm.qcEvict.Value(),
		Invalidations: g.tm.qcInval.Value(),
	}
}

// shardFor routes an owner ID to its shard. The hash is stable for the
// gateway's lifetime, so one owner's requests always execute on one worker
// — that is what serializes a tenant without a tenant lock. The mapping is
// store.ShardFor so the durability layer's compaction homes each owner's
// recovered state with the worker that will serve it.
func (g *Gateway) shardFor(owner string) *shard {
	return g.shards[store.ShardFor(owner, len(g.shards))]
}

// ObservedPattern returns a copy of one owner's update-pattern transcript —
// the per-tenant leakage DP-Sync bounds. Unknown owners return an empty
// pattern. The read executes on the owner's shard worker, ordered with that
// owner's traffic. Racing a concurrent Close returns an empty pattern
// rather than blocking: the worker drains its queue on shutdown, and the
// receive below also selects on quit in case the task was never enqueued.
func (g *Gateway) ObservedPattern(owner string) leakage.Pattern {
	done := make(chan leakage.Pattern, 1) // buffered: the worker never blocks on it
	t := task{owner: owner, peek: true, run: func(tn *tenant, _ error) {
		var out leakage.Pattern
		if tn != nil {
			out.Events = make([]leakage.Event, len(tn.observed.Events))
			copy(out.Events, tn.observed.Events)
		}
		done <- out
	}}
	sh := g.shardFor(owner)
	select {
	case sh.tasks <- t:
	case <-g.quit:
		return leakage.Pattern{}
	}
	select {
	case p := <-done:
		return p
	case <-g.quit:
		// The worker may still drain the task; prefer its answer if so.
		select {
		case p := <-done:
			return p
		default:
			return leakage.Pattern{}
		}
	}
}

// ObservedLedger returns a copy of one owner's privacy-budget ledger — the
// crash-consistent ε accounting the durability subsystem protects. Unknown
// owners return an empty ledger. The read executes on the owner's shard
// worker (same ordering and Close-race rules as ObservedPattern). Charges
// are spent at commit, in the same completion that records the transcript
// event, so the ledger always matches the transcript it is read next to.
func (g *Gateway) ObservedLedger(owner string) *dp.Budget {
	done := make(chan *dp.Budget, 1)
	t := task{owner: owner, peek: true, run: func(tn *tenant, _ error) {
		if tn == nil {
			done <- dp.NewBudget()
			return
		}
		done <- tn.budget.Clone()
	}}
	sh := g.shardFor(owner)
	select {
	case sh.tasks <- t:
	case <-g.quit:
		return dp.NewBudget()
	}
	select {
	case b := <-done:
		return b
	case <-g.quit:
		select {
		case b := <-done:
			return b
		default:
			return dp.NewBudget()
		}
	}
}

// OwnerCut executes fn on shard sid's worker with a commit-consistent copy
// of every established tenant's durable state on that shard (owners whose
// first sync has not committed are omitted — they have no durable history to
// transfer). Because fn runs on the same goroutine that feeds
// Replicator.Committed, a replication hub can record its stream position and
// take the cut atomically: every commit is either inside the cut or after
// the recorded basis, never both, never neither. The copies are safe to
// read concurrently with the live shard (spill coalescing widens the last
// SegmentRef in place, so refs are copied; batches are immutable once
// committed). Returns false if the gateway shut down before fn could run.
func (g *Gateway) OwnerCut(sid int, fn func([]store.OwnerState)) bool {
	sh := g.shards[sid]
	done := make(chan struct{})
	t := task{peek: true, run: func(_ *tenant, _ error) {
		defer close(done)
		states := make([]store.OwnerState, 0, len(sh.owners))
		for owner, tn := range sh.owners {
			if tn.ticks == 0 {
				continue
			}
			events := make([]leakage.Event, len(tn.observed.Events))
			copy(events, tn.observed.Events)
			spilled := make([]store.SegmentRef, len(tn.spilled))
			copy(spilled, tn.spilled)
			tail := make([]store.Batch, len(tn.history))
			copy(tail, tn.history)
			states = append(states, store.OwnerState{
				Owner:   owner,
				Clock:   uint64(tn.ticks),
				Events:  events,
				Budget:  tn.budget.Clone(),
				Spilled: spilled,
				Tail:    tail,
			})
		}
		fn(states)
	}}
	select {
	case sh.tasks <- t:
	case <-g.quit:
		return false
	}
	select {
	case <-done:
		return true
	case <-g.quit:
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
}

// Store exposes the durability subsystem (nil in in-memory mode) so the
// replication hub can flush and stream history segments for snapshot
// transfers.
func (g *Gateway) Store() *store.Store { return g.store }

// Shards reports the resolved shard-worker count (Config.Shards after
// defaulting) — the replication hub sizes its per-shard stream state to it.
func (g *Gateway) Shards() int { return len(g.shards) }

// Closed is closed when the gateway has shut down (gracefully or by Kill) —
// the signal a cluster node's lease-renewal loop selects on to step down.
func (g *Gateway) Closed() <-chan struct{} { return g.quit }

// StoreMetrics reports the durability subsystem's counters; ok is false in
// in-memory mode.
func (g *Gateway) StoreMetrics() (m store.Metrics, ok bool) {
	if g.store == nil {
		return store.Metrics{}, false
	}
	return g.store.Metrics(), true
}

// ShardStatus is one shard worker's durable-progress view for the status
// plane: WAL entries appended but not yet group-committed, and the shard's
// committed entry total.
type ShardStatus struct {
	Shard      int
	PendingWAL int64
	Committed  int64
}

// ShardStatuses reports every shard's durable progress. It reads atomic
// mirrors the shard workers maintain — a status scrape never enqueues onto a
// shard, so it stays bounded no matter how deep the shard queues are.
func (g *Gateway) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(g.shards))
	for i, sh := range g.shards {
		out[i] = ShardStatus{
			Shard:      i,
			PendingWAL: sh.pendingAtomic.Load(),
			Committed:  sh.committedAtomic.Load(),
		}
	}
	return out
}

// Live reports currently open client and replication connections.
func (g *Gateway) Live() (conns, repl int64) {
	return g.liveConns.Load(), g.liveRepl.Load()
}

// Recovery reports what New's recovery pass reconstructed (zero value in
// in-memory mode).
func (g *Gateway) Recovery() store.RecoveryInfo {
	if g.store == nil {
		return store.RecoveryInfo{}
	}
	return g.store.Info()
}

// handle speaks the gateway protocol on one connection: hello negotiation,
// then pipelined multiplexed frames until the peer hangs up, stalls past
// the read deadline, or exceeds the malformed-frame bound.
func (g *Gateway) handle(conn net.Conn) {
	// The handler arrives owning a connWG slot; a replication handover swaps
	// it for a replWG slot so client drain never waits on follower tails.
	swapped := false
	defer func() {
		if swapped {
			g.replWG.Done()
		} else {
			g.connWG.Done()
		}
	}()
	defer conn.Close()
	// Register for forced teardown (Kill severs live connections the way a
	// crash would); a connection accepted while an abandon is in progress
	// is dropped immediately.
	g.mu.Lock()
	if g.closed && g.abandon {
		g.mu.Unlock()
		return
	}
	g.conns[conn] = struct{}{}
	g.mu.Unlock()
	g.liveConns.Add(1)
	defer func() {
		g.liveConns.Add(-1)
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
	}()
	logged := 0
	logf := func(format string, args ...any) {
		if logged < maxErrorLogs {
			g.log.Warn(fmt.Sprintf(format, args...), "conn", conn.RemoteAddr().String())
			logged++
		}
	}

	if g.cfg.ReadTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(g.cfg.ReadTimeout))
	}
	kind, versionByte, err := wire.ReadAnyHello(conn)
	if err != nil {
		logf("rejecting connection: %v", err)
		return
	}
	if kind == wire.HelloRepl {
		// A follower asking to tail this node's WAL. Without a hub the
		// answer is a refusal (this gateway is not a cluster primary); with
		// one, the connection is handed over whole. Repl conns are tracked
		// separately so a graceful Close severs rather than drains them.
		if g.cfg.Replicator == nil {
			_ = wire.WriteHelloRefused(conn)
			return
		}
		g.mu.Lock()
		if g.closed {
			// Shutdown already snapshotted the tails it will sever; a late
			// joiner would outlive the severance pass and wedge replWG.
			g.mu.Unlock()
			_ = wire.WriteHelloRefused(conn)
			return
		}
		g.replConns[conn] = struct{}{}
		g.replWG.Add(1)
		g.mu.Unlock()
		g.connWG.Done()
		swapped = true
		g.liveRepl.Add(1)
		defer func() {
			g.liveRepl.Add(-1)
			g.mu.Lock()
			delete(g.replConns, conn)
			g.mu.Unlock()
		}()
		_ = conn.SetReadDeadline(time.Time{}) // the hub owns its own deadlines
		g.cfg.Replicator.ServeConn(conn, versionByte)
		return
	}
	// A read-only hello ("DPSQ") on a primary is served from the same path
	// as a full client — the primary is trivially fresh, so MinOffset never
	// refuses here — but its write half is disabled: syncs and resumes get
	// the typed not-primary refusal so a misrouted writer fails loudly
	// instead of mutating state over a connection negotiated as read-only.
	readOnly := kind == wire.HelloRead
	codec := wire.Codec(versionByte)
	if !codec.Valid() {
		// Unknown proposal: downgrade to the compat codec rather than
		// refusing a newer client.
		codec = wire.CodecJSON
	}
	if err := wire.WriteHelloAck(conn, codec); err != nil {
		return
	}

	// The writer goroutine serializes responses onto the connection.
	// Responses arrive from shard workers out of order (that is the point
	// of pipelining); request IDs let the client re-match them. Once a
	// write fails or times out — the write-stall deadline — the writer
	// turns into a drain AND severs the connection, so the reader stops
	// admitting work for a peer that has stopped consuming responses.
	//
	// Flow control invariant: inflight counts every admitted request and
	// every reader-originated reply (errors, sheds) from admission until
	// the writer dequeues its response. Admission stops at MaxInFlight
	// (typed backpressure), and even refusals stop at MaxInFlight +
	// shedHeadroom (the connection is severed instead). respCh's capacity
	// is that same bound, so a shard worker's reply can NEVER block on a
	// slow connection — the slow tenant sheds its own load while unrelated
	// tenants on the same shard keep their latency.
	maxInFlight := g.cfg.MaxInFlight
	respCh := make(chan timedResponse, maxInFlight+shedHeadroom)
	var inflight atomic.Int64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		dead := false
		for r := range respCh {
			if !dead {
				out, err := codec.EncodeGatewayResponse(r.resp)
				if err != nil {
					g.log.Error("encoding response failed; severing connection",
						"conn", conn.RemoteAddr().String(), "err", err)
					dead = true
				} else {
					_ = conn.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout))
					if err := wire.WriteFrame(conn, out); err != nil {
						dead = true
					} else {
						if r.enq != 0 {
							g.tm.ack.ObserveEx(float64(time.Now().UnixNano()-r.enq)/1e3, r.tc.TraceID())
						}
						// The frame is on the wire: the request's trace ends
						// here (root span client-admit = admission → ack
						// written). Unsampled-but-slow syncs are captured by
						// the same call.
						g.cfg.Tracer.Finish(r.tc, "client-admit")
					}
				}
				if dead {
					// Sever: the peer stalled past the write deadline (or the
					// stream is unencodable). Closing the conn breaks the
					// reader out of its blocking ReadFrame, so the connection
					// winds down instead of half-living as a request sink.
					g.severed.Add(1)
					conn.Close()
				}
			}
			inflight.Add(-1)
		}
	}()

	var pending sync.WaitGroup
	reply := func(r wire.GatewayResponse, tc telemetry.TraceContext) {
		tr := timedResponse{resp: r, tc: tc}
		if g.tm.on {
			tr.enq = time.Now().UnixNano()
		}
		respCh <- tr
		pending.Done()
	}
	// admit reserves an inflight slot for one response. Reader-side replies
	// get a slot unconditionally up to the severance bound; shard-bound
	// requests stop at the cap.
	admit := func() { inflight.Add(1); pending.Add(1) }

	frameErrs := 0
	for {
		if g.cfg.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(g.cfg.ReadTimeout))
		}
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				if errors.Is(err, os.ErrDeadlineExceeded) {
					logf("closing idle connection: no complete frame within %v", g.cfg.ReadTimeout)
				} else {
					logf("closing connection: %v", err)
				}
			}
			break
		}
		if int(inflight.Load()) >= maxInFlight+shedHeadroom {
			// The peer ignored its window AND shedHeadroom refusals in a
			// row: the grace window is spent. Sever rather than shed again —
			// every further frame is free hostility.
			logf("severing connection: %d unanswered requests exceed in-flight cap %d + grace %d",
				inflight.Load(), maxInFlight, shedHeadroom)
			g.severed.Add(1)
			break
		}
		greq, err := codec.DecodeGatewayRequest(payload)
		if err != nil {
			frameErrs++
			logf("malformed frame (%d/%d): %v", frameErrs, g.cfg.MaxFrameErrors, err)
			admit()
			reply(wire.GatewayResponse{ID: greq.ID, Resp: wire.Response{Error: err.Error()}}, telemetry.TraceContext{})
			if frameErrs >= g.cfg.MaxFrameErrors {
				logf("closing connection after %d malformed frames", frameErrs)
				break
			}
			continue
		}
		if greq.Owner == "" {
			admit()
			reply(wire.GatewayResponse{ID: greq.ID, Resp: wire.Response{Error: "gateway: missing owner id"}}, telemetry.TraceContext{})
			continue
		}
		if readOnly {
			switch greq.Req.Type {
			case wire.MsgSetup, wire.MsgUpdate, wire.MsgResume:
				admit()
				reply(wire.GatewayResponse{ID: greq.ID, Resp: wire.Response{Error: wire.ErrNotPrimary.Error()}}, telemetry.TraceContext{})
				continue
			}
		}
		if int(inflight.Load()) >= maxInFlight {
			// Load shed: refuse without touching tenant state. The refusal
			// is typed so the client can back off and retry — application
			// state (clock, ledger, transcript) is untouched, which is what
			// keeps a shed privacy-neutral.
			g.sheds.Add(1)
			admit()
			reply(wire.GatewayResponse{ID: greq.ID, Resp: wire.Response{
				Error: wire.ErrBackpressure.Error(), Backpressure: true,
			}}, telemetry.TraceContext{})
			continue
		}
		admit()
		id, req, owner := greq.ID, greq.Req, greq.Owner
		sh := g.shardFor(owner)
		// Trace admission: one atomic add decides sampling; the admission
		// timestamp doubles as the queue-wait stage's start, so tracing and
		// telemetry share a single clock read.
		var tc telemetry.TraceContext
		var at int64
		if g.tm.on || g.cfg.Tracer != nil {
			now := time.Now()
			at = now.UnixNano()
			tc = g.cfg.Tracer.Admit("client-admit", now)
			if tc.Sampled() && g.cfg.DebugTenantMetrics {
				// Tenant identity on a trace only behind the same debug gate
				// as per-tenant metrics, and only as the owner hash.
				tc.SetAttr("owner_hash=" + telemetry.OwnerHash(owner))
			}
		}
		// Only the setup protocol creates a namespace (peek otherwise):
		// queries, updates, resumes, and stats probes against unknown owners
		// must not let a read-only request stream allocate backend state.
		t := task{owner: owner, peek: req.Type != wire.MsgSetup, at: at, tc: tc, run: func(tn *tenant, terr error) {
			if terr != nil {
				reply(wire.GatewayResponse{ID: id, Resp: wire.Response{Error: terr.Error()}}, tc)
				return
			}
			g.dispatch(sh, tn, owner, req, tc, func(resp wire.Response) {
				reply(wire.GatewayResponse{ID: id, Resp: resp}, tc)
			})
		}}
		select {
		case sh.tasks <- t:
		case <-g.quit:
			reply(wire.GatewayResponse{ID: id, Resp: wire.Response{Error: "gateway: shutting down"}}, tc)
		}
	}
	// In-flight tasks still owe responses; wait for them before tearing the
	// response channel down, then let the writer flush.
	pending.Wait()
	close(respCh)
	<-writerDone
}
