package gateway_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dpsync/internal/client"
	"dpsync/internal/core"
	"dpsync/internal/crypte"
	"dpsync/internal/dp"
	"dpsync/internal/edb"
	"dpsync/internal/gateway"
	"dpsync/internal/query"
	"dpsync/internal/record"
	"dpsync/internal/seal"
	"dpsync/internal/server"
	"dpsync/internal/strategy"
	"dpsync/internal/wire"
)

func startGateway(t *testing.T, cfg gateway.Config) (*gateway.Gateway, []byte) {
	t.Helper()
	key := cfg.Key
	if key == nil {
		var err error
		key, err = seal.NewRandomKey()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Key = key
	}
	gw, err := gateway.New("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = gw.Serve() }()
	t.Cleanup(func() { _ = gw.Close() })
	return gw, key
}

func yellow(tick int, id uint16) record.Record {
	return record.Record{PickupTime: record.Tick(tick), PickupID: id, Provider: record.YellowCab}
}

func TestGatewayEndToEndBothCodecs(t *testing.T) {
	for _, codec := range []wire.Codec{wire.CodecJSON, wire.CodecBinary} {
		t.Run(codec.String(), func(t *testing.T) {
			gw, key := startGateway(t, gateway.Config{})
			conn, err := client.DialGateway(gw.Addr(), key, client.WithCodec(codec))
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if conn.Codec() != codec {
				t.Fatalf("negotiated %v, want %v", conn.Codec(), codec)
			}
			own := conn.Owner("owner-1")
			if err := own.Setup([]record.Record{yellow(0, 60), yellow(0, 70)}); err != nil {
				t.Fatal(err)
			}
			if err := own.Update([]record.Record{yellow(1, 80), record.NewDummy(record.YellowCab)}); err != nil {
				t.Fatal(err)
			}
			ans, cost, err := own.Query(query.Q1())
			if err != nil {
				t.Fatal(err)
			}
			if ans.Scalar != 3 {
				t.Errorf("Q1 = %v, want 3", ans.Scalar)
			}
			if cost.RecordsScanned != 4 {
				t.Errorf("scanned = %d, want full store", cost.RecordsScanned)
			}
			// Owner-side stats know the split; the gateway's view cannot.
			if st := own.Stats(); st.RealRecords != 3 || st.DummyRecords != 1 {
				t.Errorf("owner stats = %+v", st)
			}
			remote, err := own.RemoteStats()
			if err != nil {
				t.Fatal(err)
			}
			if remote.Records != 4 || remote.Scheme != "ObliDB" {
				t.Errorf("remote stats = %+v", remote)
			}
			if own.Name() != "ObliDB-gateway" || own.Leakage() != edb.L0 {
				t.Errorf("identity = %q/%v", own.Name(), own.Leakage())
			}
			pat := gw.ObservedPattern("owner-1")
			if pat.Updates() != 2 || pat.Events[1].Volume != 2 {
				t.Errorf("observed pattern = %s", pat.String())
			}
		})
	}
}

// TestTranscriptDifferential is the acceptance-criteria differential test:
// for the same owner trace, the transcript each gateway tenant accumulates
// must be bit-identical to the transcript the single-owner internal/server
// observes — multi-tenancy must add nothing to and remove nothing from the
// per-owner leakage.
func TestTranscriptDifferential(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}

	// Three owners with different strategies and seeds, 400 ticks each.
	type ownerSpec struct {
		name string
		mk   func() strategy.Strategy
	}
	specs := []ownerSpec{
		{"owner-sur", func() strategy.Strategy { return strategy.NewSUR() }},
		{"owner-timer", func() strategy.Strategy {
			s, err := strategy.NewTimer(strategy.TimerConfig{
				Epsilon: 0.5, Period: 30, FlushInterval: 150, FlushSize: 5,
				Source: dp.NewSeededSource(41),
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"owner-ant", func() strategy.Strategy {
			s, err := strategy.NewANT(strategy.ANTConfig{
				Epsilon: 0.5, Threshold: 10, FlushInterval: 150, FlushSize: 5,
				Source: dp.NewSeededSource(42),
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	const ticks = 400

	drive := func(t *testing.T, db edb.Database, strat strategy.Strategy, seed int) *core.Owner {
		t.Helper()
		owner, err := core.New(core.Config{Strategy: strat, Database: db})
		if err != nil {
			t.Fatal(err)
		}
		if err := owner.Setup([]record.Record{yellow(0, 10), yellow(0, 20)}); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= ticks; i++ {
			var terr error
			if (i+seed)%3 == 0 {
				terr = owner.Tick(yellow(i, uint16(i%record.NumLocations+1)))
			} else {
				terr = owner.Tick()
			}
			if terr != nil {
				t.Fatal(terr)
			}
		}
		return owner
	}

	// Reference: each owner alone against the single-owner server.
	wantPatterns := map[string]string{}
	for i, spec := range specs {
		srv, err := server.New("127.0.0.1:0", key, nil)
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve() }()
		cl, err := client.Dial(srv.Addr(), key)
		if err != nil {
			t.Fatal(err)
		}
		drive(t, cl, spec.mk(), i)
		wantPatterns[spec.name] = srv.ObservedPattern().String()
		cl.Close()
		srv.Close()
	}

	// Same traces through one shared gateway over one multiplexed
	// connection, interleaved tick-by-tick so the tenants' request streams
	// genuinely mix on the wire.
	gw, _ := startGateway(t, gateway.Config{Key: key, Shards: 2})
	conn, err := client.DialGateway(gw.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	owners := make([]*core.Owner, len(specs))
	for i, spec := range specs {
		owner, err := core.New(core.Config{Strategy: spec.mk(), Database: conn.Owner(spec.name)})
		if err != nil {
			t.Fatal(err)
		}
		if err := owner.Setup([]record.Record{yellow(0, 10), yellow(0, 20)}); err != nil {
			t.Fatal(err)
		}
		owners[i] = owner
	}
	for i := 1; i <= ticks; i++ {
		for j, owner := range owners {
			var terr error
			if (i+j)%3 == 0 {
				terr = owner.Tick(yellow(i, uint16(i%record.NumLocations+1)))
			} else {
				terr = owner.Tick()
			}
			if terr != nil {
				t.Fatal(terr)
			}
		}
	}

	for i, spec := range specs {
		got := gw.ObservedPattern(spec.name)
		if got.String() != wantPatterns[spec.name] {
			t.Errorf("%s transcript diverged:\n gateway: %s\n  single: %s",
				spec.name, got.String(), wantPatterns[spec.name])
		}
		// And the gateway transcript carries the owner's full upload-volume
		// sequence (the server indexes events by update sequence, not by
		// owner tick — it has no tick source; same as internal/server).
		want := owners[i].Pattern()
		if got.Updates() != want.Updates() {
			t.Errorf("%s: gateway saw %d updates, owner posted %d", spec.name, got.Updates(), want.Updates())
			continue
		}
		for j, e := range got.Events {
			if e.Volume != want.Events[j].Volume {
				t.Errorf("%s: event %d volume %d != owner volume %d", spec.name, j, e.Volume, want.Events[j].Volume)
			}
		}
	}
}

func TestGatewayCrypteBackend(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	gw, _ := startGateway(t, gateway.Config{
		Key: key,
		NewBackend: func(owner string) (edb.Database, error) {
			// Deterministic noise so the test can reason about answers.
			return crypte.NewWithKey(key, crypte.WithNoiseSource(dp.NewSeededSource(7)))
		},
	})
	conn, err := client.DialGateway(gw.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	own := conn.Owner("crypte-owner")
	if own.Name() != "Crypteps-gateway" || own.Leakage() != edb.LDP {
		t.Fatalf("identity = %q/%v", own.Name(), own.Leakage())
	}
	if err := edb.CheckCompatibility(own); err != nil {
		t.Fatalf("L-DP backend must pass the §6 gate: %v", err)
	}
	if err := own.Setup([]record.Record{yellow(0, 60), yellow(0, 61)}); err != nil {
		t.Fatal(err)
	}
	if err := own.Update([]record.Record{yellow(1, 62), record.NewDummy(record.YellowCab)}); err != nil {
		t.Fatal(err)
	}
	ans, _, err := own.Query(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	// Three real records in range plus Lap(1/3) noise: must be near 3.
	if ans.Scalar < 0 || ans.Scalar > 10 {
		t.Errorf("noisy Q1 = %v, implausible", ans.Scalar)
	}
	// Cryptε has no join operator; the refusal must cross the wire.
	if _, _, err := own.Query(query.Q3()); err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Errorf("join on Cryptε backend: err = %v", err)
	}
	// Storage accounting uses the Cryptε encoding width.
	if st := own.Stats(); st.Bytes != 4*6400 {
		t.Errorf("owner bytes = %d, want 4 encodings", st.Bytes)
	}
	if remote, err := own.RemoteStats(); err != nil || remote.Scheme != "Crypteps" {
		t.Errorf("remote = %+v, %v", remote, err)
	}
}

// TestGatewayRealAHEBackend runs the true-crypto Cryptε mode behind the
// gateway: ingest folds genuine Paillier aggregates, queries decrypt
// through the pipeline — unchanged, per the tentpole requirement.
func TestGatewayRealAHEBackend(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := crypte.NewAHEPipeline(256)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	gw, _ := startGateway(t, gateway.Config{
		Key: key,
		NewBackend: func(owner string) (edb.Database, error) {
			return crypte.NewWithKey(key,
				crypte.WithRealAHE(pipe),
				crypte.WithNoiseSource(dp.NewSeededSource(11)))
		},
	})
	conn, err := client.DialGateway(gw.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	own := conn.Owner("real-ahe-owner")
	if err := own.Setup([]record.Record{yellow(0, 55), yellow(0, 56)}); err != nil {
		t.Fatal(err)
	}
	ans, _, err := own.Query(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Scalar < -5 || ans.Scalar > 10 {
		t.Errorf("noisy Q1 through real AHE = %v, implausible", ans.Scalar)
	}
}

func TestGatewayOwnerIsolation(t *testing.T) {
	gw, key := startGateway(t, gateway.Config{Shards: 3})
	conn, err := client.DialGateway(gw.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	a, b := conn.Owner("owner-a"), conn.Owner("owner-b")
	if err := a.Setup([]record.Record{yellow(0, 60)}); err != nil {
		t.Fatal(err)
	}
	// owner-b has its own namespace: no setup yet, so updates are refused
	// even though owner-a is set up.
	if err := b.Update([]record.Record{yellow(1, 61)}); err == nil || !strings.Contains(err.Error(), "not set up") {
		t.Errorf("owner-b update before setup: err = %v", err)
	}
	if err := b.Setup([]record.Record{yellow(0, 70), yellow(0, 71), yellow(0, 72)}); err != nil {
		t.Fatal(err)
	}
	// Queries see only the namespace's own records.
	ansA, _, err := a.Query(query.Q2())
	if err != nil {
		t.Fatal(err)
	}
	ansB, _, err := b.Query(query.Q2())
	if err != nil {
		t.Fatal(err)
	}
	if ansA.Total() != 1 || ansB.Total() != 3 {
		t.Errorf("cross-tenant bleed: a=%v b=%v", ansA.Total(), ansB.Total())
	}
	// Transcripts are per-owner; the refused pre-setup update was never
	// observed (it mirrors the single-owner server: observe after success).
	pa, pb := gw.ObservedPattern("owner-a"), gw.ObservedPattern("owner-b")
	if pa.Updates() != 1 || pa.Events[0].Volume != 1 {
		t.Errorf("owner-a pattern: %s", pa.String())
	}
	if pb.Updates() != 1 || pb.Events[0].Volume != 3 {
		t.Errorf("owner-b pattern: %s", pb.String())
	}
	if gw.Owners() != 2 {
		t.Errorf("owners = %d", gw.Owners())
	}
	// Unknown owners have empty transcripts (and peeking creates nothing).
	if p := gw.ObservedPattern("owner-never"); p.Updates() != 0 {
		t.Errorf("ghost transcript: %s", p.String())
	}
	if gw.Owners() != 2 {
		t.Errorf("peek created a tenant: owners = %d", gw.Owners())
	}
}

func TestGatewayWrongKeyRejected(t *testing.T) {
	gw, _ := startGateway(t, gateway.Config{})
	otherKey, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.DialGateway(gw.Addr(), otherKey)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Owner("intruder").Setup([]record.Record{yellow(0, 60)}); err == nil {
		t.Error("enclave admitted ciphertexts sealed under the wrong key")
	}
}

func TestGatewayManyOwnersConcurrent(t *testing.T) {
	gw, key := startGateway(t, gateway.Config{Shards: 4})
	const (
		conns         = 4
		ownersPerConn = 16
		updates       = 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, conns*ownersPerConn)
	for ci := 0; ci < conns; ci++ {
		conn, err := client.DialGateway(gw.Addr(), key)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		for oi := 0; oi < ownersPerConn; oi++ {
			wg.Add(1)
			go func(conn *client.GatewayConn, ci, oi int) {
				defer wg.Done()
				own := conn.Owner(fmt.Sprintf("owner-%d-%d", ci, oi))
				if err := own.Setup(nil); err != nil {
					errs <- err
					return
				}
				for u := 1; u <= updates; u++ {
					if err := own.Update([]record.Record{yellow(u, uint16(u))}); err != nil {
						errs <- err
						return
					}
				}
				ans, _, err := own.Query(query.Q2())
				if err != nil {
					errs <- err
					return
				}
				if ans.Total() != updates {
					errs <- fmt.Errorf("owner %d-%d: Q2 total = %v, want %d", ci, oi, ans.Total(), updates)
				}
			}(conn, ci, oi)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if gw.Owners() != conns*ownersPerConn {
		t.Errorf("owners = %d, want %d", gw.Owners(), conns*ownersPerConn)
	}
	// Every owner's transcript has exactly setup + updates events.
	for ci := 0; ci < conns; ci++ {
		for oi := 0; oi < ownersPerConn; oi++ {
			if p := gw.ObservedPattern(fmt.Sprintf("owner-%d-%d", ci, oi)); p.Updates() != updates+1 {
				t.Errorf("owner-%d-%d transcript: %d events", ci, oi, p.Updates())
			}
		}
	}
}

// TestReadOnlyRequestsAllocateNoNamespace pins the hostile-allocation
// bound: stats probes and queries against never-setup owners must not
// materialize tenant state, while still reporting the backend identity a
// client needs before its first upload.
func TestReadOnlyRequestsAllocateNoNamespace(t *testing.T) {
	gw, key := startGateway(t, gateway.Config{})
	conn, err := client.DialGateway(gw.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 50; i++ {
		own := conn.Owner(fmt.Sprintf("probe-%d", i))
		remote, err := own.RemoteStats()
		if err != nil {
			t.Fatal(err)
		}
		// Identity is reported from a throwaway backend instance...
		if remote.Scheme != "ObliDB" || remote.Records != 0 {
			t.Fatalf("probe stats = %+v", remote)
		}
		// ...and queries/updates fail exactly as an un-setup store would.
		if _, _, err := own.Query(query.Q1()); err == nil || !strings.Contains(err.Error(), "not set up") {
			t.Fatalf("query on unknown owner: err = %v", err)
		}
		if err := own.Update([]record.Record{yellow(1, 1)}); err == nil || !strings.Contains(err.Error(), "not set up") {
			t.Fatalf("update on unknown owner: err = %v", err)
		}
	}
	if gw.Owners() != 0 {
		t.Fatalf("read-only probes allocated %d namespaces", gw.Owners())
	}
	// Setup still creates exactly one.
	if err := conn.Owner("probe-0").Setup(nil); err != nil {
		t.Fatal(err)
	}
	if gw.Owners() != 1 {
		t.Fatalf("owners = %d after one setup", gw.Owners())
	}
}

// TestObservedPatternDuringClose pins that a transcript read racing Close
// returns (empty or complete) instead of deadlocking.
func TestObservedPatternDuringClose(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.New("127.0.0.1:0", gateway.Config{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = gw.Serve() }()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = gw.ObservedPattern(fmt.Sprintf("racer-%d", i))
			}
		}(i)
	}
	_ = gw.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ObservedPattern deadlocked against Close")
	}
}

func TestGatewayRejectsBadHello(t *testing.T) {
	gw, _ := startGateway(t, gateway.Config{ReadTimeout: 200 * time.Millisecond})
	conn, err := net.Dial("tcp", gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("gateway acked a non-protocol hello")
	}
}

func TestGatewayDowngradesUnknownCodec(t *testing.T) {
	gw, _ := startGateway(t, gateway.Config{})
	conn, err := net.Dial("tcp", gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteHello(conn, wire.Codec(99)); err != nil {
		t.Fatal(err)
	}
	got, err := wire.ReadHelloAck(conn)
	if err != nil {
		t.Fatal(err)
	}
	if got != wire.CodecJSON {
		t.Errorf("downgrade target = %v, want JSON", got)
	}
}

func TestGatewayMissingOwnerRejected(t *testing.T) {
	gw, key := startGateway(t, gateway.Config{})
	conn, err := client.DialGateway(gw.Addr(), key, client.WithCodec(wire.CodecJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// An empty owner id cannot name a namespace.
	if err := conn.Owner("").Setup(nil); err == nil || !strings.Contains(err.Error(), "missing owner") {
		t.Errorf("empty owner: err = %v", err)
	}
}

func TestGatewayHalfOpenConnectionReleased(t *testing.T) {
	gw, _ := startGateway(t, gateway.Config{ReadTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Valid hello, then a partial frame header and silence.
	if err := wire.WriteHello(conn, wire.CodecBinary); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadHelloAck(conn); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1)
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		_, _ = conn.Read(buf)
	}()
	select {
	case <-done:
	case <-time.After(6 * time.Second):
		t.Fatal("gateway kept the half-open connection")
	}
}
