package oblidb

import (
	"errors"
	"testing"

	"dpsync/internal/edb"
	"dpsync/internal/query"
	"dpsync/internal/record"
	"dpsync/internal/seal"
)

// Tests for the sealed ingest path used by the networked deployment, driven
// directly against the package (the server tests exercise it over TCP).

func TestSealedLifecycle(t *testing.T) {
	db := newDB(t)
	if db.Name() != "ObliDB" {
		t.Errorf("name = %q", db.Name())
	}
	cts, err := db.Sealer().SealAll([]record.Record{
		yellow(1, 60),
		record.NewDummy(record.YellowCab),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.UpdateSealed(cts); !errors.Is(err, edb.ErrNotSetup) {
		t.Errorf("UpdateSealed before setup: %v", err)
	}
	if err := db.SetupSealed(cts[:1]); err != nil {
		t.Fatal(err)
	}
	if err := db.SetupSealed(nil); !errors.Is(err, edb.ErrAlreadySetup) {
		t.Errorf("double SetupSealed: %v", err)
	}
	if err := db.UpdateSealed(cts[1:]); err != nil {
		t.Fatal(err)
	}
	// Server-side stats cannot see the split: everything counts as records,
	// zero dummies.
	s := db.Stats()
	if s.Records != 2 || s.DummyRecords != 0 {
		t.Errorf("sealed-path stats = %+v", s)
	}
	// The enclave still filters the dummy out of answers.
	ans, _, err := db.Query(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Scalar != 1 {
		t.Errorf("Q1 = %v, want 1", ans.Scalar)
	}
}

func TestSealedRejectsForgedLength(t *testing.T) {
	db := newDB(t)
	if err := db.SetupSealed([]seal.Sealed{make(seal.Sealed, 10)}); err == nil {
		t.Error("short ciphertext accepted")
	}
}

func TestGreenTableScanExtent(t *testing.T) {
	db := newDB(t)
	var rs []record.Record
	for i := 0; i < 6; i++ {
		rs = append(rs, yellow(i, 1))
	}
	for i := 0; i < 3; i++ {
		rs = append(rs, green(100+i, 2))
	}
	if err := db.Setup(rs); err != nil {
		t.Fatal(err)
	}
	// A Green-targeted query scans only the 3 Green records.
	_, cost, err := db.Query(query.Query{Kind: query.RangeCount, Provider: record.GreenTaxi, Lo: 1, Hi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if cost.RecordsScanned != 3 {
		t.Errorf("green scan = %d records, want 3", cost.RecordsScanned)
	}
	log := db.AccessLog()
	if log[len(log)-1] != 3 {
		t.Errorf("access log = %v, want last entry 3", log)
	}
}
