// Package oblidb implements an ObliDB-style encrypted database substrate
// (Eskandarian & Zaharia): a TEE-hosted query engine over independently
// encrypted records with oblivious, volume-hiding query processing — the
// paper's representative of the L-0 leakage group.
//
// The original runs inside an Intel SGX enclave with ORAM-backed tables.
// This reproduction keeps the architecture but simulates the enclave
// boundary in-process: the *server* side stores only AES-GCM ciphertexts and
// never holds the data key; the *enclave* side (enclave.go) owns the key,
// admits ciphertexts into enclave-resident tables (the ORAM stand-in), and
// executes queries as oblivious scans whose access extent is a deterministic
// function of table sizes alone — verified by tests. Query-execution time is
// modeled with calibrated constants (see edb.ObliDBCostModel) because the
// cost of an oblivious scan depends only on the record count, which the
// simulation tracks exactly.
package oblidb

import (
	"fmt"
	"sync"

	"dpsync/internal/edb"
	"dpsync/internal/oram"
	"dpsync/internal/query"
	"dpsync/internal/record"
	"dpsync/internal/seal"
)

// BlockBytes is the outsourced width of one record: ObliDB pads rows into
// fixed-size ORAM blocks, so storage accounting charges 1 KiB per record
// regardless of the 16-byte logical payload.
const BlockBytes = 1024

// DB is the server-visible half of the ObliDB simulator. It satisfies
// edb.Database. All methods are safe for concurrent use.
type DB struct {
	mu      sync.Mutex
	store   []seal.Sealed // ciphertexts in arrival order, as the server sees them
	enclave *Enclave
	model   edb.CostModel
	stats   edb.StorageStats
	setup   bool

	// accessLog records, per query, how many resident records the oblivious
	// scan touched. Obliviousness means every entry is a function of table
	// sizes only, never of data or predicates.
	accessLog []int

	// oram, when non-nil, mirrors the ciphertext store into a Path ORAM so
	// the physical block-access pattern is oblivious too (see orambacked.go).
	oram *oram.ORAM
}

// New creates an ObliDB instance with a fresh random data key.
func New() (*DB, error) {
	key, err := seal.NewRandomKey()
	if err != nil {
		return nil, err
	}
	return NewWithKey(key)
}

// NewWithKey creates an ObliDB instance with the given 32-byte data key
// (shared with the owner, as in any symmetric outsourced database).
func NewWithKey(key []byte) (*DB, error) {
	enc, err := NewEnclave(key)
	if err != nil {
		return nil, err
	}
	return &DB{enclave: enc, model: edb.ObliDBCostModel()}, nil
}

// Name implements edb.Database.
func (db *DB) Name() string { return "ObliDB" }

// Leakage implements edb.Database: ObliDB is the paper's L-0 exemplar.
func (db *DB) Leakage() edb.LeakageClass { return edb.L0 }

// Supports implements edb.Database; ObliDB evaluates all bundled queries.
func (db *DB) Supports(q query.Query) bool { return q.Validate() == nil }

// Sealer exposes the enclave's sealer so the owner side can encrypt records
// before upload. In the real system the owner provisions the key to the
// enclave via remote attestation; here both ends share the Sealer.
func (db *DB) Sealer() *seal.Sealer { return db.enclave.sealer }

// Setup implements edb.Database.
func (db *DB) Setup(rs []record.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.setup {
		return edb.ErrAlreadySetup
	}
	db.setup = true
	return db.ingest(rs)
}

// Update implements edb.Database.
func (db *DB) Update(rs []record.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.setup {
		return edb.ErrNotSetup
	}
	return db.ingest(rs)
}

// ingest seals the batch (records always cross the owner/server boundary as
// ciphertexts) and admits it. Callers hold db.mu.
func (db *DB) ingest(rs []record.Record) error {
	cts, err := db.enclave.sealer.SealAll(rs)
	if err != nil {
		return fmt.Errorf("oblidb: sealing batch: %w", err)
	}
	if err := db.enclave.Ingest(cts); err != nil {
		return err
	}
	if err := db.mirrorToORAM(cts, len(db.store)); err != nil {
		return err
	}
	db.store = append(db.store, cts...)
	dummies := len(rs) - record.CountReal(rs)
	db.stats.Add(len(rs), dummies, BlockBytes)
	return nil
}

// SetupSealed initializes the store with pre-sealed ciphertexts — the
// networked deployment path, where the owner seals client-side and the
// server receives only opaque blobs. The real/dummy split is invisible at
// this boundary (that is the point of dummy records), so server-side stats
// count every ciphertext under Records with DummyRecords = 0; the owner
// keeps the true accounting.
func (db *DB) SetupSealed(cts []seal.Sealed) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.setup {
		return edb.ErrAlreadySetup
	}
	db.setup = true
	return db.ingestSealed(cts)
}

// UpdateSealed appends pre-sealed ciphertexts (see SetupSealed).
func (db *DB) UpdateSealed(cts []seal.Sealed) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.setup {
		return edb.ErrNotSetup
	}
	return db.ingestSealed(cts)
}

func (db *DB) ingestSealed(cts []seal.Sealed) error {
	if err := db.enclave.Ingest(cts); err != nil {
		return err
	}
	if err := db.mirrorToORAM(cts, len(db.store)); err != nil {
		return err
	}
	db.store = append(db.store, cts...)
	db.stats.Add(len(cts), 0, BlockBytes)
	return nil
}

// Query implements edb.Database: the enclave executes the rewritten plan
// obliviously over its resident tables and returns the exact answer. The
// returned cost follows the calibrated model.
func (db *DB) Query(q query.Query) (query.Answer, edb.Cost, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.setup {
		return query.Answer{}, edb.Cost{}, edb.ErrNotSetup
	}
	if err := q.Validate(); err != nil {
		return query.Answer{}, edb.Cost{}, err
	}
	ans, touched, err := db.enclave.Execute(q)
	if err != nil {
		return query.Answer{}, edb.Cost{}, err
	}
	db.accessLog = append(db.accessLog, touched)
	return ans, db.cost(q), nil
}

// cost models QET from the current store composition. Each table is its own
// ORAM structure, so a linear query scans only its target table (real +
// dummy ciphertexts tagged with that provider); the join compares every
// Yellow ciphertext against every Green ciphertext. Callers hold db.mu.
func (db *DB) cost(q query.Query) edb.Cost {
	ny, ng := db.enclave.tableSizes()
	if q.Kind == query.JoinCount {
		return db.model.Join(ny, ng)
	}
	n := ny
	if q.Provider == record.GreenTaxi {
		n = ng
	}
	return db.model.Linear(q.Kind, n)
}

// Stats implements edb.Database.
func (db *DB) Stats() edb.StorageStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// AccessLog returns the per-query touched-record counts. Tests use it to
// assert obliviousness: every entry must equal the scanned table's size when
// the query ran, independent of data and predicates.
func (db *DB) AccessLog() []int {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]int, len(db.accessLog))
	copy(out, db.accessLog)
	return out
}

// StoreSize returns the number of outsourced ciphertexts (adversary-visible).
func (db *DB) StoreSize() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.store)
}

var _ edb.Database = (*DB)(nil)
