package oblidb

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"dpsync/internal/query"
	"dpsync/internal/record"
)

// randomBatch mirrors what owners upload: valid real records plus dummies.
func randomBatch(rng *rand.Rand, n int) []record.Record {
	rs := make([]record.Record, 0, n)
	for i := 0; i < n; i++ {
		switch rng.IntN(5) {
		case 0:
			rs = append(rs, record.NewDummy(record.YellowCab))
		case 1:
			rs = append(rs, record.NewDummy(record.GreenTaxi))
		default:
			p := record.YellowCab
			if rng.IntN(2) == 0 {
				p = record.GreenTaxi
			}
			rs = append(rs, record.Record{
				PickupTime: record.Tick(rng.IntN(200)),
				PickupID:   uint16(rng.IntN(record.NumLocations) + 1),
				Provider:   p,
				FareCents:  uint32(rng.IntN(record.MaxFareCents + 1)),
			})
		}
	}
	return rs
}

// TestIncrementalMatchesNaive is the enclave's differential pin: after every
// ingest batch, each query's answer must be bit-identical to re-evaluating
// the Appendix-B-rewritten plan over a mirror of everything uploaded so far
// (the enclave itself keeps only aggregates and sizes), while the access
// log and the modeled cost stay exactly what the full-scan path reports —
// a function of table sizes alone.
func TestIncrementalMatchesNaive(t *testing.T) {
	queries := []query.Query{
		query.Q1(), query.Q2(), query.Q3(), query.Q4(),
		{Kind: query.GroupCount, Provider: record.GreenTaxi},
		{Kind: query.JoinCount, Provider: record.GreenTaxi, JoinWith: record.YellowCab},
	}
	for trial := 0; trial < 5; trial++ {
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(uint64(trial), 0x0b11db))
			db := newDB(t)
			mirror := query.Tables{}
			upload := func(rs []record.Record) {
				for _, r := range rs {
					mirror[r.Provider] = append(mirror[r.Provider], r)
				}
			}
			d0 := randomBatch(rng, 50)
			if err := db.Setup(d0); err != nil {
				t.Fatal(err)
			}
			upload(d0)
			wantLog := []int{}
			for batch := 0; batch < 6; batch++ {
				next := randomBatch(rng, rng.IntN(80))
				if err := db.Update(next); err != nil {
					t.Fatal(err)
				}
				upload(next)
				ny, ng := db.enclave.tableSizes()
				for _, q := range queries {
					got, cost, err := db.Query(q)
					if err != nil {
						t.Fatalf("batch %d %v: %v", batch, q.Kind, err)
					}
					want, err := query.Evaluate(q, mirror) // Appendix-B rewrite inside
					if err != nil {
						t.Fatalf("batch %d %v naive: %v", batch, q.Kind, err)
					}
					if got.L1(want) != 0 {
						t.Errorf("batch %d %v: incremental %+v != naive %+v", batch, q.Kind, got, want)
					}
					// The modeled cost must be what the full oblivious scan
					// charges, derived from table sizes alone.
					wantCost := db.model.Linear(q.Kind, ny)
					switch {
					case q.Kind == query.JoinCount:
						wantCost = db.model.Join(ny, ng)
					case q.Provider == record.GreenTaxi:
						wantCost = db.model.Linear(q.Kind, ng)
					}
					if cost != wantCost {
						t.Errorf("batch %d %v: cost %+v != full-scan model %+v", batch, q.Kind, cost, wantCost)
					}
					// And the access log keeps recording full scan extents.
					switch {
					case q.Kind == query.JoinCount:
						wantLog = append(wantLog, int(ny+ng))
					case q.Provider == record.GreenTaxi:
						wantLog = append(wantLog, int(ng))
					default:
						wantLog = append(wantLog, int(ny))
					}
				}
			}
			gotLog := db.AccessLog()
			if len(gotLog) != len(wantLog) {
				t.Fatalf("access log has %d entries, want %d", len(gotLog), len(wantLog))
			}
			for i := range wantLog {
				if gotLog[i] != wantLog[i] {
					t.Errorf("access log[%d] = %d, want full scan extent %d", i, gotLog[i], wantLog[i])
				}
			}
		})
	}
}

// TestScanCostFlatInAnswerPath sanity-checks the perf claim behind the
// incremental engine at unit-test scale: the *modeled* cost grows with the
// store (obliviousness) while the answer computation no longer walks it.
// The real wall-clock flatness is pinned by BenchmarkMicroObliviousScan.
func TestScanCostFlatInAnswerPath(t *testing.T) {
	db := newDB(t)
	if err := db.Setup([]record.Record{yellow(1, 60)}); err != nil {
		t.Fatal(err)
	}
	_, c1, err := db.Query(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	big := make([]record.Record, 5000)
	for i := range big {
		big[i] = record.NewDummy(record.YellowCab)
	}
	if err := db.Update(big); err != nil {
		t.Fatal(err)
	}
	ans, c2, err := db.Query(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Scalar != 1 {
		t.Errorf("answer drifted with dummies: %v", ans.Scalar)
	}
	if c2.Seconds <= c1.Seconds || c2.RecordsScanned != 5001 {
		t.Errorf("modeled cost must still charge the full scan: %+v then %+v", c1, c2)
	}
}
