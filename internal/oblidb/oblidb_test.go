package oblidb

import (
	"testing"

	"dpsync/internal/edb"
	"dpsync/internal/query"
	"dpsync/internal/record"
)

func newDB(t *testing.T) *DB {
	t.Helper()
	db, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func yellow(tick int, id uint16) record.Record {
	return record.Record{PickupTime: record.Tick(tick), PickupID: id, Provider: record.YellowCab}
}

func green(tick int, id uint16) record.Record {
	return record.Record{PickupTime: record.Tick(tick), PickupID: id, Provider: record.GreenTaxi}
}

func TestLifecycleErrors(t *testing.T) {
	db := newDB(t)
	if err := db.Update([]record.Record{yellow(1, 1)}); err != edb.ErrNotSetup {
		t.Errorf("Update before Setup: %v", err)
	}
	if _, _, err := db.Query(query.Q1()); err != edb.ErrNotSetup {
		t.Errorf("Query before Setup: %v", err)
	}
	if err := db.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Setup(nil); err != edb.ErrAlreadySetup {
		t.Errorf("second Setup: %v", err)
	}
}

func TestQueryAnswersExact(t *testing.T) {
	db := newDB(t)
	if err := db.Setup([]record.Record{yellow(0, 60), yellow(1, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update([]record.Record{yellow(2, 70), green(2, 5), record.NewDummy(record.YellowCab)}); err != nil {
		t.Fatal(err)
	}
	ans, cost, err := db.Query(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Scalar != 2 { // ids 60, 70 in [50,100]; dummy ignored
		t.Errorf("Q1 = %v, want 2", ans.Scalar)
	}
	// Q1 targets the Yellow table: 3 real + 1 dummy ciphertexts.
	if cost.RecordsScanned != 4 {
		t.Errorf("scanned %d, want the Yellow table's 4", cost.RecordsScanned)
	}

	ans, _, err = db.Query(query.Q2())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Total() != 3 { // three real yellow records
		t.Errorf("Q2 total = %v, want 3", ans.Total())
	}

	ans, cost, err = db.Query(query.Q3())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Scalar != 1 { // tick 2 collides across providers
		t.Errorf("Q3 = %v, want 1", ans.Scalar)
	}
	if cost.PairsCompared == 0 {
		t.Error("join cost should count pairs")
	}
}

// TestAccessTraceOblivious pins the L-0 property the substrate exists to
// provide: the number of ciphertexts touched per query depends only on the
// store size, never on data values or predicates.
func TestAccessTraceOblivious(t *testing.T) {
	mkDB := func(ids []uint16) *DB {
		db := newDB(t)
		var rs []record.Record
		for i, id := range ids {
			rs = append(rs, yellow(i, id))
		}
		if err := db.Setup(rs); err != nil {
			t.Fatal(err)
		}
		return db
	}
	// Same sizes, completely different data: one all-in-range, one none.
	dbA := mkDB([]uint16{50, 60, 70, 80, 90})
	dbB := mkDB([]uint16{1, 2, 3, 4, 5})
	queries := []query.Query{query.Q1(), query.Q2(), query.Q3(), {Kind: query.RangeCount, Provider: record.YellowCab, Lo: 200, Hi: 210}}
	for _, q := range queries {
		if _, _, err := dbA.Query(q); err != nil {
			t.Fatal(err)
		}
		if _, _, err := dbB.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	la, lb := dbA.AccessLog(), dbB.AccessLog()
	for i := range la {
		if la[i] != 5 || lb[i] != 5 {
			t.Errorf("query %d: access counts %d / %d, want full-store scans of 5", i, la[i], lb[i])
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	db := newDB(t)
	if err := db.Setup([]record.Record{yellow(0, 1), record.NewDummy(record.YellowCab)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update([]record.Record{record.NewDummy(record.GreenTaxi)}); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Records != 3 || s.RealRecords != 1 || s.DummyRecords != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.Bytes != 3*BlockBytes || s.DummyBytes != 2*BlockBytes {
		t.Errorf("bytes = %d / %d", s.Bytes, s.DummyBytes)
	}
	if s.Updates != 2 {
		t.Errorf("updates = %d", s.Updates)
	}
	if db.StoreSize() != 3 {
		t.Errorf("store size = %d", db.StoreSize())
	}
}

func TestJoinCostUsesPerTableSizes(t *testing.T) {
	db := newDB(t)
	var rs []record.Record
	for i := 0; i < 10; i++ {
		rs = append(rs, yellow(i, 1))
	}
	for i := 0; i < 4; i++ {
		rs = append(rs, green(100+i, 1))
	}
	if err := db.Setup(rs); err != nil {
		t.Fatal(err)
	}
	_, cost, err := db.Query(query.Q3())
	if err != nil {
		t.Fatal(err)
	}
	if cost.PairsCompared != 40 {
		t.Errorf("pairs = %d, want 10×4", cost.PairsCompared)
	}
}

func TestCostGrowsWithStore(t *testing.T) {
	db := newDB(t)
	if err := db.Setup([]record.Record{yellow(0, 1)}); err != nil {
		t.Fatal(err)
	}
	_, c1, err := db.Query(query.Q2())
	if err != nil {
		t.Fatal(err)
	}
	var batch []record.Record
	for i := 0; i < 100; i++ {
		batch = append(batch, record.NewDummy(record.YellowCab))
	}
	if err := db.Update(batch); err != nil {
		t.Fatal(err)
	}
	_, c2, err := db.Query(query.Q2())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Seconds <= c1.Seconds {
		t.Errorf("cost did not grow with dummies: %v then %v", c1.Seconds, c2.Seconds)
	}
}

func TestLeakageAndSupports(t *testing.T) {
	db := newDB(t)
	if db.Leakage() != edb.L0 {
		t.Errorf("leakage = %v", db.Leakage())
	}
	if err := edb.CheckCompatibility(db); err != nil {
		t.Errorf("ObliDB should be DP-Sync compatible: %v", err)
	}
	for _, q := range []query.Query{query.Q1(), query.Q2(), query.Q3()} {
		if !db.Supports(q) {
			t.Errorf("should support %v", q.Kind)
		}
	}
	if db.Supports(query.Query{Kind: query.RangeCount, Provider: record.YellowCab, Lo: 9, Hi: 1}) {
		t.Error("invalid query reported as supported")
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	db := newDB(t)
	if err := db.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Query(query.Query{Kind: query.JoinCount, Provider: record.YellowCab}); err == nil {
		t.Error("invalid join accepted")
	}
}

func TestNewWithKeyRejectsBadKey(t *testing.T) {
	if _, err := NewWithKey([]byte("short")); err == nil {
		t.Error("bad key accepted")
	}
}

func TestOwnerSealerInterop(t *testing.T) {
	// The owner seals with db.Sealer(); the enclave must open those exact
	// ciphertexts. (Exercises the shared-key provisioning path.)
	db := newDB(t)
	r := yellow(7, 77)
	ct, err := db.Sealer().Seal(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Sealer().Open(ct)
	if err != nil || got != r {
		t.Errorf("owner/enclave sealer mismatch: %v %v", got, err)
	}
}
