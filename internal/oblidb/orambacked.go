package oblidb

import (
	"fmt"

	"dpsync/internal/oram"
	"dpsync/internal/seal"
)

// ORAM backing for the ciphertext store. The paper evaluates ObliDB "with
// ORAM enabled": the enclave's table blocks live in a Path ORAM so that even
// the *physical* block-access sequence leaks nothing. EnableORAM switches
// this simulator to that configuration — every ingested ciphertext is also
// written through Path ORAM, and ScanThroughORAM replays a full table scan
// as ORAM reads, which tests use to verify the end-to-end physical trace is
// data-independent.
//
// The default (disabled) configuration models the same leakage profile at
// simulation speed; enabling ORAM costs O(log n) bucket touches per record
// access, exactly the paper's deployment trade-off.

// EnableORAM allocates a Path ORAM for up to capacity ciphertexts and
// mirrors all future ingests into it. Must be called before Setup.
func (db *DB) EnableORAM(capacity int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.setup {
		return fmt.Errorf("oblidb: EnableORAM must precede Setup")
	}
	if len(db.store) > 0 {
		return fmt.Errorf("oblidb: store not empty")
	}
	o, err := oram.New(capacity)
	if err != nil {
		return err
	}
	db.oram = o
	return nil
}

// ORAMEnabled reports whether the Path ORAM layer is active.
func (db *DB) ORAMEnabled() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.oram != nil
}

// mirrorToORAM writes a batch of ciphertexts into the ORAM, id-ed by their
// position in the store (1-based). Callers hold db.mu. Sealed records are
// 44 bytes and ORAM blocks 64; each ciphertext occupies one block,
// length-prefixed so reads can strip the padding.
func (db *DB) mirrorToORAM(cts []seal.Sealed, firstIndex int) error {
	if db.oram == nil {
		return nil
	}
	for i, ct := range cts {
		if len(ct) > oram.BlockSize-1 {
			return fmt.Errorf("oblidb: ciphertext %d too large for ORAM block", firstIndex+i)
		}
		var blk [oram.BlockSize]byte
		blk[0] = byte(len(ct))
		copy(blk[1:], ct)
		if err := db.oram.Write(uint32(firstIndex+i+1), blk); err != nil {
			return fmt.Errorf("oblidb: oram write %d: %w", firstIndex+i, err)
		}
	}
	return nil
}

// ScanThroughORAM performs a full-store scan through the Path ORAM layer,
// returning the ciphertexts in store order. The physical access trace this
// produces (oram.AccessLog) is what the L-0 claim rests on when ORAM mode is
// enabled.
func (db *DB) ScanThroughORAM() ([]seal.Sealed, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.oram == nil {
		return nil, fmt.Errorf("oblidb: ORAM not enabled")
	}
	out := make([]seal.Sealed, len(db.store))
	for i := range db.store {
		blk, err := db.oram.Read(uint32(i + 1))
		if err != nil {
			return nil, fmt.Errorf("oblidb: oram read %d: %w", i, err)
		}
		n := int(blk[0])
		if n > oram.BlockSize-1 {
			return nil, fmt.Errorf("oblidb: corrupt ORAM block %d", i)
		}
		ct := make(seal.Sealed, n)
		copy(ct, blk[1:1+n])
		out[i] = ct
	}
	return out, nil
}

// ORAMAccessLog exposes the physical access transcript for tests.
func (db *DB) ORAMAccessLog() []uint32 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.oram == nil {
		return nil
	}
	return db.oram.AccessLog()
}
