package oblidb

import (
	"testing"

	"dpsync/internal/query"
	"dpsync/internal/record"
)

func TestORAMBackedRoundTrip(t *testing.T) {
	db := newDB(t)
	if err := db.EnableORAM(128); err != nil {
		t.Fatal(err)
	}
	if !db.ORAMEnabled() {
		t.Fatal("ORAM not enabled")
	}
	var rs []record.Record
	for i := 0; i < 40; i++ {
		rs = append(rs, yellow(i, uint16(i%record.NumLocations+1)))
	}
	if err := db.Setup(rs[:10]); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(rs[10:]); err != nil {
		t.Fatal(err)
	}
	// The ORAM scan must return decryptable ciphertexts matching the store
	// contents in order.
	cts, err := db.ScanThroughORAM()
	if err != nil {
		t.Fatal(err)
	}
	if len(cts) != 40 {
		t.Fatalf("scan returned %d ciphertexts", len(cts))
	}
	for i, ct := range cts {
		r, err := db.Sealer().Open(ct)
		if err != nil {
			t.Fatalf("ciphertext %d from ORAM does not authenticate: %v", i, err)
		}
		if r != rs[i] {
			t.Fatalf("record %d mismatch after ORAM round trip", i)
		}
	}
	// Queries still answer exactly with ORAM enabled.
	ans, _, err := db.Query(query.Q2())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Total() != 40 {
		t.Errorf("Q2 total = %v", ans.Total())
	}
}

func TestEnableORAMOrdering(t *testing.T) {
	db := newDB(t)
	if err := db.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableORAM(10); err == nil {
		t.Error("EnableORAM after Setup accepted")
	}
	db2 := newDB(t)
	if db2.ORAMEnabled() {
		t.Error("ORAM enabled by default")
	}
	if _, err := db2.ScanThroughORAM(); err == nil {
		t.Error("scan without ORAM accepted")
	}
}

func TestORAMPhysicalTraceGrows(t *testing.T) {
	db := newDB(t)
	if err := db.EnableORAM(64); err != nil {
		t.Fatal(err)
	}
	if err := db.Setup([]record.Record{yellow(1, 1), yellow(2, 2)}); err != nil {
		t.Fatal(err)
	}
	before := len(db.ORAMAccessLog())
	if before != 2 {
		t.Errorf("ingest produced %d ORAM accesses, want 2", before)
	}
	if _, err := db.ScanThroughORAM(); err != nil {
		t.Fatal(err)
	}
	after := len(db.ORAMAccessLog())
	if after != before+2 {
		t.Errorf("scan produced %d accesses, want 2", after-before)
	}
}

func TestORAMCapacityExceeded(t *testing.T) {
	db := newDB(t)
	if err := db.EnableORAM(3); err != nil {
		t.Fatal(err)
	}
	var rs []record.Record
	for i := 0; i < 5; i++ {
		rs = append(rs, yellow(i, 1))
	}
	if err := db.Setup(rs); err == nil {
		t.Error("over-capacity ingest accepted")
	}
}
