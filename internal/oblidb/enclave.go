package oblidb

import (
	"fmt"
	"sync"

	"dpsync/internal/query"
	"dpsync/internal/record"
	"dpsync/internal/seal"
)

// Enclave simulates the SGX-resident half of ObliDB: it owns the data key
// and hosts the decrypted tables in enclave-protected memory (ORAM in the
// real system). Ciphertexts are opened exactly once, when they enter the
// enclave; queries then execute oblivious scans over the resident tables.
// The simulation preserves the two properties DP-Sync's analysis needs from
// an L-0 engine:
//
//  1. Query execution touches every resident record of the scanned table,
//     in storage order, no matter what the query or the data says (verified
//     by TestAccessTraceOblivious). Response volumes therefore reveal
//     nothing.
//  2. Dummy records are filtered *inside* the enclave via the Appendix-B
//     query rewrite, so answers are exact over real records while the
//     real/dummy split never crosses the enclave boundary.
//
// Answers are computed from incrementally maintained aggregates (updated at
// ingest) rather than by re-evaluating the relational plan over the resident
// tables on every query — amortized O(1) per ingested record, O(keys) per
// query. This changes nothing the adversary or the metrics see: the modeled
// oblivious execution still touches the full scan extent (scanExtent, the
// access log, and the calibrated cost model are untouched), and the
// incremental answers are bit-identical to the naive plan evaluation, which
// TestIncrementalMatchesNaive pins. Obliviousness is a property of the
// *modeled* engine; how the simulator computes the (exact) answer is free.
type Enclave struct {
	mu     sync.Mutex
	sealer *seal.Sealer

	// agg holds the incrementally maintained query aggregates over the
	// resident real records (dummies are filtered at Observe, mirroring the
	// Appendix-B rewrite). It is the only per-record state the simulated
	// enclave keeps: the resident table *sizes* below are what drive the
	// modeled oblivious scans, so retaining decrypted rows would only
	// duplicate what the aggregates already answer from.
	agg *query.Aggregates
	// yellow / green count resident records per table, dummies included —
	// they drive the scan extent and the join cost model.
	yellow, green int64
}

// NewEnclave provisions an enclave with the shared data key.
func NewEnclave(key []byte) (*Enclave, error) {
	s, err := seal.NewSealer(key)
	if err != nil {
		return nil, err
	}
	return &Enclave{sealer: s, agg: query.NewAggregates()}, nil
}

// Ingest opens a batch of ciphertexts into the enclave-resident tables.
// A failed authentication aborts the whole batch (nothing is admitted), the
// behaviour of an enclave rejecting forged inputs at the attested boundary.
func (e *Enclave) Ingest(cts []seal.Sealed) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	opened := make([]record.Record, len(cts))
	for i, ct := range cts {
		r, err := e.sealer.Open(ct)
		if err != nil {
			return fmt.Errorf("oblidb: ciphertext %d rejected by enclave: %w", i, err)
		}
		opened[i] = r
	}
	for _, r := range opened {
		e.agg.Observe(r)
		if r.Provider == record.GreenTaxi {
			e.green++
		} else {
			e.yellow++
		}
	}
	return nil
}

// Execute runs q over the resident store and returns the exact answer plus
// the number of records the oblivious scan touched — the full target
// table(s), independent of data and predicates. The answer comes from the
// ingest-time aggregates and equals the Appendix-B-rewritten plan evaluated
// over the ingested records (TestIncrementalMatchesNaive keeps a mirror of
// every upload and pins exactly that).
func (e *Enclave) Execute(q query.Query) (query.Answer, int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ans, err := e.agg.AnswerFor(q)
	if err != nil {
		return query.Answer{}, 0, err
	}
	touched := e.scanExtent(q)
	return ans, touched, nil
}

// scanExtent reports how many resident records the oblivious execution of q
// reads: the target table for linear queries, both tables for joins.
// Callers hold e.mu.
func (e *Enclave) scanExtent(q query.Query) int {
	switch {
	case q.Kind == query.JoinCount:
		return int(e.yellow + e.green)
	case q.Provider == record.GreenTaxi:
		return int(e.green)
	default:
		return int(e.yellow)
	}
}

// tableSizes reports the per-provider resident record counts (dummies
// included) for the cost model.
func (e *Enclave) tableSizes() (yellow, green int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.yellow, e.green
}
