package crypte

import (
	"fmt"

	"dpsync/internal/ahe"
	"dpsync/internal/query"
	"dpsync/internal/record"
)

// AHEPipeline is the real cryptographic core of Cryptε: records become
// one-hot vectors of Paillier ciphertexts over the pickup-location domain,
// an untrusted aggregator sums them without any key material, and the
// analyst side decrypts aggregate histograms. Dummy records encode the
// all-zero vector, which is why they vanish from every linear query — the
// algebraic counterpart of the Appendix-B rewrite.
//
// The fast simulation path in DB evaluates the same linear algebra in
// plaintext; TestAHEPipelineMatchesPlaintext pins the two paths to each
// other, so the performance shortcut cannot drift from the construction.
type AHEPipeline struct {
	sk *ahe.PrivateKey
}

// NewAHEPipeline generates a key pair. 512-bit keys keep tests fast;
// production deployments would use ≥2048.
func NewAHEPipeline(bits int) (*AHEPipeline, error) {
	sk, err := ahe.GenerateKey(bits)
	if err != nil {
		return nil, err
	}
	return &AHEPipeline{sk: sk}, nil
}

// PublicKey returns the encryption key, the only material the encoder and
// the aggregation server ever need.
func (p *AHEPipeline) PublicKey() *ahe.PublicKey { return &p.sk.PublicKey }

// EncodeRecord produces the one-hot location encoding of r: a vector of
// NumLocations Paillier ciphertexts, all encrypting 0 except a 1 at the
// record's pickup zone. Dummy records encode all zeros. Every vector also
// carries one extra slot encrypting the (bounded) fare, supporting the Q4
// SUM extension.
func (p *AHEPipeline) EncodeRecord(r record.Record) ([]ahe.Ciphertext, error) {
	pk := p.PublicKey()
	out := make([]ahe.Ciphertext, record.NumLocations+1)
	for i := 0; i < record.NumLocations; i++ {
		m := int64(0)
		if !r.Dummy && int(r.PickupID) == i+1 {
			m = 1
		}
		ct, err := pk.Encrypt(m)
		if err != nil {
			return nil, fmt.Errorf("crypte: encode bin %d: %w", i, err)
		}
		out[i] = ct
	}
	fare := int64(0)
	if !r.Dummy {
		fare = int64(r.FareCents)
	}
	ct, err := pk.Encrypt(fare)
	if err != nil {
		return nil, fmt.Errorf("crypte: encode fare: %w", err)
	}
	out[record.NumLocations] = ct
	return out, nil
}

// Aggregate blindly sums encoded records — the aggregation server's entire
// job. It needs only the public key. The release is re-randomized once per
// slot (SumVector itself no longer is, trading the per-input zero
// encryptions for plain homomorphic additions), so the published aggregate
// stays unlinkable to the uploaded encodings even for a party that observed
// them — including the degenerate one-record window, where the raw sum
// would alias the upload outright.
func Aggregate(pk *ahe.PublicKey, encodings ...[]ahe.Ciphertext) ([]ahe.Ciphertext, error) {
	sum, err := pk.SumVector(encodings...)
	if err != nil {
		return nil, err
	}
	for i := range sum {
		z, err := pk.EncryptZero()
		if err != nil {
			return nil, err
		}
		sum[i] = pk.Add(sum[i], z)
	}
	return sum, nil
}

// DecryptAnswer turns an aggregated encoding into the exact answer of q
// (before DP noise): histogram bins for GroupCount, bin-range sums for
// RangeCount, the fare slot for SumFare.
func (p *AHEPipeline) DecryptAnswer(q query.Query, agg []ahe.Ciphertext) (query.Answer, error) {
	if len(agg) != record.NumLocations+1 {
		return query.Answer{}, fmt.Errorf("crypte: aggregate width %d, want %d", len(agg), record.NumLocations+1)
	}
	switch q.Kind {
	case query.GroupCount:
		groups := make([]float64, record.NumLocations)
		for i := 0; i < record.NumLocations; i++ {
			v, err := p.sk.Decrypt(agg[i])
			if err != nil {
				return query.Answer{}, fmt.Errorf("crypte: bin %d: %w", i, err)
			}
			groups[i] = float64(v)
		}
		return query.Answer{Groups: groups}, nil
	case query.RangeCount:
		var sum float64
		lo := int(q.Lo)
		if lo < 1 {
			lo = 1 // zone IDs are 1-based; bin 0 does not exist
		}
		for i := lo; i <= int(q.Hi) && i <= record.NumLocations; i++ {
			v, err := p.sk.Decrypt(agg[i-1])
			if err != nil {
				return query.Answer{}, fmt.Errorf("crypte: bin %d: %w", i, err)
			}
			sum += float64(v)
		}
		return query.Answer{Scalar: sum}, nil
	case query.SumFare:
		v, err := p.sk.Decrypt(agg[record.NumLocations])
		if err != nil {
			return query.Answer{}, fmt.Errorf("crypte: fare slot: %w", err)
		}
		return query.Answer{Scalar: float64(v)}, nil
	default:
		return query.Answer{}, fmt.Errorf("%w: %v on the AHE pipeline", ErrUnsupportedAHE, q.Kind)
	}
}

// ErrUnsupportedAHE marks queries outside the linear repertoire.
var ErrUnsupportedAHE = fmt.Errorf("crypte: query not expressible as a linear aggregate")
