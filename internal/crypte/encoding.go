package crypte

import (
	"fmt"
	"runtime"

	"dpsync/internal/ahe"
	"dpsync/internal/query"
	"dpsync/internal/record"
)

// encWidth is the slot count of one record encoding: a one-hot histogram
// over the pickup-location domain plus one fare slot for the Q4 extension.
const encWidth = record.NumLocations + 1

// AHEPipeline is the real cryptographic core of Cryptε: records become
// one-hot vectors of Paillier ciphertexts over the pickup-location domain,
// an untrusted aggregator sums them without any key material, and the
// analyst side decrypts aggregate histograms. Dummy records encode the
// all-zero vector, which is why they vanish from every linear query — the
// algebraic counterpart of the Appendix-B rewrite.
//
// The pipeline runs the owner side of the offline/online split: a
// CRT-backed ahe.RandomizerPool pre-generates randomizer powers in the
// background (the owner holds the private key, so each costs two half-size
// exponentiations), and EncodeRecord assembles its 266 ciphertexts with one
// modular multiplication per slot, fanned out across the shared worker
// pool. Call Close when the pipeline is no longer needed to release the
// generator goroutines.
//
// The fast simulation path in DB evaluates the same linear algebra in
// plaintext; TestAHEPipelineMatchesPlaintext pins the two paths to each
// other, so the performance shortcut cannot drift from the construction.
// WithRealAHE (crypte.go) flips a DB onto this pipeline for real.
type AHEPipeline struct {
	sk   *ahe.PrivateKey
	pool *ahe.RandomizerPool
	// releasePool pre-generates the zero encryptions spent re-randomizing
	// released aggregates. It is built from the public key only, because
	// release re-randomization runs on the untrusted aggregation server —
	// the owner-side CRT pool must never cross that boundary. It lives on
	// the pipeline (not per-DB) so the pipeline's creator owns every
	// background goroutine through one Close.
	releasePool *ahe.RandomizerPool
}

// NewAHEPipeline generates a key pair and starts the owner-side randomizer
// pool plus the server-side release pool. 384–512-bit keys keep tests
// fast; production deployments would use ≥2048.
func NewAHEPipeline(bits int) (*AHEPipeline, error) {
	sk, err := ahe.GenerateKey(bits)
	if err != nil {
		return nil, err
	}
	return &AHEPipeline{
		sk:          sk,
		pool:        sk.NewRandomizerPool(runtime.GOMAXPROCS(0), 2*encWidth),
		releasePool: sk.PublicKey.NewRandomizerPool(runtime.GOMAXPROCS(0), 2*encWidth),
	}, nil
}

// Close stops the pipeline's background randomizer generation (both the
// owner-side pool and the release pool). It is idempotent, and the
// pipeline remains usable afterwards — encryption and re-randomization
// fall back to computing randomizers inline.
func (p *AHEPipeline) Close() {
	p.pool.Close()
	p.releasePool.Close()
}

// PublicKey returns the encryption key, the only material the encoder and
// the aggregation server ever need.
func (p *AHEPipeline) PublicKey() *ahe.PublicKey { return &p.sk.PublicKey }

// EncodeRecord produces the one-hot location encoding of r: a vector of
// NumLocations Paillier ciphertexts, all encrypting 0 except a 1 at the
// record's pickup zone. Dummy records encode all zeros. Every vector also
// carries one extra slot encrypting the (bounded) fare, supporting the Q4
// SUM extension. Slots are encrypted concurrently on the shared worker
// pool, each online-assembled from a pooled randomizer power.
func (p *AHEPipeline) EncodeRecord(r record.Record) ([]ahe.Ciphertext, error) {
	out := make([]ahe.Ciphertext, encWidth)
	err := ahe.ParallelSlotsErr(encWidth, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			m := int64(0)
			if !r.Dummy {
				if i == record.NumLocations {
					// The fare is keyed by pickup zone in the clear engine's
					// per-ID totals, so a record whose PickupID falls outside
					// the domain (ingest does not Validate) must contribute
					// nothing here either — otherwise full-range SumFare
					// would diverge from the clear path the differential
					// tests pin against.
					if r.PickupID >= 1 && int(r.PickupID) <= record.NumLocations {
						m = int64(r.FareCents)
					}
				} else if int(r.PickupID) == i+1 {
					m = 1
				}
			}
			ct, err := p.pool.Encrypt(m)
			if err != nil {
				return fmt.Errorf("crypte: encode slot %d: %w", i, err)
			}
			out[i] = ct
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Aggregate blindly sums encoded records — the aggregation server's entire
// job. It needs only the public key. The release is re-randomized once per
// slot (SumVector itself no longer is, trading the per-input zero
// encryptions for plain homomorphic additions), so the published aggregate
// stays unlinkable to the uploaded encodings even for a party that observed
// them — including the degenerate one-record window, where the raw sum
// would alias the upload outright.
func Aggregate(pk *ahe.PublicKey, encodings ...[]ahe.Ciphertext) ([]ahe.Ciphertext, error) {
	return AggregatePooled(pk, nil, encodings...)
}

// AggregatePooled is Aggregate drawing its release-boundary zero
// encryptions from a pre-generated pool instead of computing one
// exponentiation per slot inline — the aggregation service's half of the
// offline/online split. The pool MUST be built from the public key
// (pk.NewRandomizerPool): re-randomization happens on the untrusted server,
// which never holds private-key material, so handing it an owner-side CRT
// pool would cross the trust boundary the construction is about. A nil pool
// falls back to inline zero encryptions.
func AggregatePooled(pk *ahe.PublicKey, pool *ahe.RandomizerPool, encodings ...[]ahe.Ciphertext) ([]ahe.Ciphertext, error) {
	sum, err := pk.SumVector(encodings...)
	if err != nil {
		return nil, err
	}
	if err := ahe.ParallelSlotsErr(len(sum), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if pool != nil {
				ct, err := pool.Rerandomize(sum[i])
				if err != nil {
					return err
				}
				sum[i] = ct
			} else {
				z, err := pk.EncryptZero()
				if err != nil {
					return err
				}
				sum[i] = pk.Add(sum[i], z)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return sum, nil
}

// releaseSlots lists the aggregate-vector slots whose plaintexts query q's
// release reveals — the single source of truth shared by DecryptAnswer
// (which decrypts exactly these) and the real-crypto DB's release boundary
// (which re-randomizes exactly these before publishing).
func releaseSlots(q query.Query) ([]int, error) {
	switch q.Kind {
	case query.GroupCount:
		s := make([]int, record.NumLocations)
		for i := range s {
			s[i] = i
		}
		return s, nil
	case query.RangeCount:
		lo := int(q.Lo)
		if lo < 1 {
			lo = 1 // zone IDs are 1-based; bin 0 does not exist
		}
		hi := int(q.Hi)
		if hi > record.NumLocations {
			hi = record.NumLocations
		}
		var s []int
		for i := lo; i <= hi; i++ {
			s = append(s, i-1)
		}
		return s, nil
	case query.SumFare:
		return []int{record.NumLocations}, nil
	default:
		return nil, fmt.Errorf("%w: %v on the AHE pipeline", ErrUnsupportedAHE, q.Kind)
	}
}

// zeroAnswer returns the exact answer of q over an empty table, shaped the
// way DecryptAnswer (and the clear engine) shape it — Groups for histogram
// kinds, Scalar otherwise. It lives next to releaseSlots/DecryptAnswer so
// the per-kind answer shape stays decided in one place.
func zeroAnswer(q query.Query) (query.Answer, error) {
	if _, err := releaseSlots(q); err != nil {
		return query.Answer{}, err
	}
	if q.Kind == query.GroupCount {
		return query.Answer{Groups: make([]float64, record.NumLocations)}, nil
	}
	return query.Answer{}, nil
}

// DecryptAnswer turns an aggregated encoding into the exact answer of q
// (before DP noise): histogram bins for GroupCount, bin-range sums for
// RangeCount, the fare slot for SumFare. Bin decryptions run concurrently
// on the shared worker pool via the CRT fast path.
func (p *AHEPipeline) DecryptAnswer(q query.Query, agg []ahe.Ciphertext) (query.Answer, error) {
	if len(agg) != encWidth {
		return query.Answer{}, fmt.Errorf("crypte: aggregate width %d, want %d", len(agg), encWidth)
	}
	slots, err := releaseSlots(q)
	if err != nil {
		return query.Answer{}, err
	}
	vals := make([]int64, len(slots))
	if err := ahe.ParallelSlotsErr(len(slots), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			v, err := p.sk.Decrypt(agg[slots[i]])
			if err != nil {
				return fmt.Errorf("crypte: slot %d: %w", slots[i], err)
			}
			vals[i] = v
		}
		return nil
	}); err != nil {
		return query.Answer{}, err
	}
	switch q.Kind {
	case query.GroupCount:
		groups := make([]float64, record.NumLocations)
		for i, v := range vals {
			groups[slots[i]] = float64(v)
		}
		return query.Answer{Groups: groups}, nil
	default: // RangeCount sums its bins; SumFare has exactly one slot
		var sum float64
		for _, v := range vals {
			sum += float64(v)
		}
		return query.Answer{Scalar: sum}, nil
	}
}

// ErrUnsupportedAHE marks queries outside the linear repertoire.
var ErrUnsupportedAHE = fmt.Errorf("crypte: query not expressible as a linear aggregate")
