package crypte

import (
	"errors"
	"testing"

	"dpsync/internal/ahe"
	"dpsync/internal/query"
	"dpsync/internal/record"
)

// pipeline is shared across tests: Paillier keygen is the expensive part.
var pipeline = mustPipeline()

func mustPipeline() *AHEPipeline {
	p, err := NewAHEPipeline(512)
	if err != nil {
		panic(err)
	}
	return p
}

func aheRecords() []record.Record {
	return []record.Record{
		{PickupTime: 1, PickupID: 60, Provider: record.YellowCab, FareCents: 1200},
		{PickupTime: 2, PickupID: 60, Provider: record.YellowCab, FareCents: 800},
		{PickupTime: 3, PickupID: 120, Provider: record.YellowCab, FareCents: 2000},
		record.NewDummy(record.YellowCab),
		{PickupTime: 5, PickupID: 42, Provider: record.YellowCab, FareCents: 450},
	}
}

// TestAHEPipelineMatchesPlaintext is the load-bearing test of the Cryptε
// substrate: the encode → blind-aggregate → decrypt pipeline must produce
// the exact answers the plaintext fast path computes, for every linear
// query kind, with dummy records algebraically vanishing.
func TestAHEPipelineMatchesPlaintext(t *testing.T) {
	rs := aheRecords()
	encs := make([][]ahe.Ciphertext, 0, len(rs))
	for i, r := range rs {
		enc, err := pipeline.EncodeRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		encs = append(encs, enc)
	}
	agg, err := Aggregate(pipeline.PublicKey(), encs...)
	if err != nil {
		t.Fatal(err)
	}

	tables := query.Tables{record.YellowCab: rs}
	for _, q := range []query.Query{
		query.Q1(),
		query.Q2(),
		query.Q4(),
		{Kind: query.RangeCount, Provider: record.YellowCab, Lo: 100, Hi: 150},
		{Kind: query.SumFare, Provider: record.YellowCab, Lo: 1, Hi: record.NumLocations},
	} {
		want, err := query.Evaluate(q, tables) // plaintext path (rewrite filters dummies)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pipeline.DecryptAnswer(q, agg)
		if err != nil {
			t.Fatalf("%v: %v", q.Kind, err)
		}
		if got.L1(want) != 0 {
			t.Errorf("%v: AHE answer differs from plaintext by %v (got %v, want %v)",
				q.Kind, got.L1(want), got.Total(), want.Total())
		}
	}
}

func TestAHEPipelineRejectsJoin(t *testing.T) {
	enc, err := pipeline.EncodeRecord(aheRecords()[0])
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(pipeline.PublicKey(), enc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.DecryptAnswer(query.Q3(), agg); !errors.Is(err, ErrUnsupportedAHE) {
		t.Errorf("join on AHE path: %v", err)
	}
}

func TestAHEPipelineWidthCheck(t *testing.T) {
	if _, err := pipeline.DecryptAnswer(query.Q2(), nil); err == nil {
		t.Error("short aggregate accepted")
	}
}

func TestDummyEncodesZeroVector(t *testing.T) {
	enc, err := pipeline.EncodeRecord(record.NewDummy(record.YellowCab))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(pipeline.PublicKey(), enc)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := pipeline.DecryptAnswer(query.Q2(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Total() != 0 {
		t.Errorf("dummy contributed %v to the histogram", ans.Total())
	}
}

// TestAggregateReleaseUnlinkable pins the release-point re-randomization:
// even a one-record aggregation window (where the raw homomorphic sum would
// equal the uploaded encoding) must publish fresh ciphertexts, while still
// decrypting to the same plaintexts.
func TestAggregateReleaseUnlinkable(t *testing.T) {
	enc, err := pipeline.EncodeRecord(record.Record{
		PickupTime: 1, PickupID: 7, Provider: record.YellowCab, FareCents: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(pipeline.PublicKey(), enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != len(enc) {
		t.Fatalf("aggregate width %d, want %d", len(agg), len(enc))
	}
	for i := range agg {
		if agg[i].C.Cmp(enc[i].C) == 0 {
			t.Fatalf("slot %d: released ciphertext identical to upload — release not re-randomized", i)
		}
	}
	ans, err := pipeline.DecryptAnswer(query.Q2(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Groups[6] != 1 || ans.Total() != 1 {
		t.Errorf("re-randomized aggregate decrypts wrong: %+v", ans)
	}
}
