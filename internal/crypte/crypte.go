// Package crypte implements a Cryptε-style encrypted database substrate
// (Roy Chowdhury et al., SIGMOD 2020): a crypto-assisted differential-privacy
// engine where an untrusted server aggregates per-record encrypted one-hot
// encodings and every released answer carries calibrated Laplace noise — the
// paper's representative of the L-DP leakage group.
//
// The original splits trust between two non-colluding servers evaluating
// linear queries over labeled homomorphic encryptions. This reproduction
// keeps the data layout (each record expands into one-hot encodings of its
// attributes, ≈6.4 KiB of ciphertext per record — which is what makes Cryptε
// storage and QET so much heavier than ObliDB's in Figure 3/Table 5) and the
// privacy interface (ε-DP noisy answers drawn from a per-query analyst
// budget), while evaluating the linear algebra in the clear inside the
// simulated aggregation service.
//
// Cryptε supports linear queries only: range counts and group-by counts.
// Joins are rejected, exactly as in the paper's evaluation (Q3 is ObliDB-only).
package crypte

import (
	"fmt"
	"sync"

	"dpsync/internal/ahe"
	"dpsync/internal/dp"
	"dpsync/internal/edb"
	"dpsync/internal/query"
	"dpsync/internal/record"
	"dpsync/internal/seal"
)

// EncodingBytes is the outsourced width of one record: one-hot encodings of
// pickup location (265 slots) and time bucket, each slot an AHE ciphertext.
// 6.4 KiB matches the paper's 943.5 Mb for 18,429 records.
const EncodingBytes = 6400

// DefaultQueryEpsilon is the analyst-side privacy budget spent on each query
// release, the paper's §8 setting ("privacy budget of Cryptε as 3").
const DefaultQueryEpsilon = 3.0

// DB is the Cryptε simulator. It satisfies edb.Database and is safe for
// concurrent use.
type DB struct {
	mu     sync.Mutex
	sealer *seal.Sealer
	// agg is the aggregation service's incrementally maintained view: each
	// ingested record folds its one-hot encodings into the running linear
	// aggregates (dummies encode all-zero vectors, so Observe skips them).
	// This is exactly how Cryptε's server works — it sums encodings as they
	// arrive rather than keeping rows — and it makes query answering
	// O(keys) instead of an O(n) rescan.
	agg   *query.Aggregates
	stats edb.StorageStats
	model edb.CostModel
	setup bool

	// real, when non-nil, switches the DB into true-crypto mode: ingest
	// maintains genuine per-provider ciphertext sums through the AHE
	// pipeline and queries decrypt through it (see WithRealAHE).
	real *realAHE

	queryEps float64
	noise    *dp.Mechanism
	spent    *dp.Budget
}

// realAHE is the true-crypto engine state. The incremental design mirrors
// the clear-text query.Aggregates exactly — each ingested encoding folds
// into a running homomorphic sum, O(encWidth) ciphertext multiplications
// per record and O(released slots) decryptions per query — so the
// performance architecture survives the jump from modeled to real crypto.
type realAHE struct {
	pipe *AHEPipeline
	// agg is the per-provider incremental ciphertext aggregate: the
	// homomorphic sum of every encoding ever uploaded for that provider
	// (dummies included — the server cannot tell, their zero vectors just
	// never shift the sums).
	agg map[record.Provider][]ahe.Ciphertext
}

// Option configures a DB.
type Option func(*DB)

// WithQueryEpsilon overrides the per-query release budget.
func WithQueryEpsilon(eps float64) Option {
	return func(db *DB) { db.queryEps = eps }
}

// WithRealAHE switches the DB into true-crypto mode backed by p: every
// ingested record is encoded into encWidth Paillier ciphertexts and folded
// into a genuine per-provider homomorphic aggregate, and every query
// re-randomizes the released slots and decrypts them through the pipeline —
// no plaintext linear algebra anywhere on the answer path. Differential
// tests pin the pre-noise answers bit-identical to the clear-text
// incremental engine.
//
// The caller keeps ownership of p: it may be shared across DBs, and its
// creator releases every background resource (the owner-side and release
// pools both live on the pipeline) with one p.Close.
func WithRealAHE(p *AHEPipeline) Option {
	return func(db *DB) {
		db.real = &realAHE{
			pipe: p,
			agg:  map[record.Provider][]ahe.Ciphertext{},
		}
	}
}

// WithNoiseSource plugs a deterministic noise source in (experiments/tests).
func WithNoiseSource(src dp.Source) Option {
	return func(db *DB) {
		m, err := dp.NewMechanism(db.queryEps, src)
		if err != nil {
			panic(fmt.Sprintf("crypte: invalid query epsilon %v: %v", db.queryEps, err))
		}
		db.noise = m
	}
}

// New creates a Cryptε instance with a fresh random key.
func New(opts ...Option) (*DB, error) {
	key, err := seal.NewRandomKey()
	if err != nil {
		return nil, err
	}
	return NewWithKey(key, opts...)
}

// NewWithKey creates a Cryptε instance using the given 32-byte key.
func NewWithKey(key []byte, opts ...Option) (*DB, error) {
	s, err := seal.NewSealer(key)
	if err != nil {
		return nil, err
	}
	db := &DB{
		sealer:   s,
		agg:      query.NewAggregates(),
		model:    edb.CrypteCostModel(),
		queryEps: DefaultQueryEpsilon,
		spent:    dp.NewBudget(),
	}
	for _, o := range opts {
		o(db)
	}
	if db.noise == nil {
		m, err := dp.NewMechanism(db.queryEps, dp.CryptoSource{})
		if err != nil {
			return nil, fmt.Errorf("crypte: query epsilon: %w", err)
		}
		db.noise = m
	}
	return db, nil
}

// Name implements edb.Database.
func (db *DB) Name() string { return "Crypteps" }

// Leakage implements edb.Database.
func (db *DB) Leakage() edb.LeakageClass { return edb.LDP }

// Supports implements edb.Database: linear queries only. True-crypto mode
// additionally restricts queries to what the encoding can express as a
// linear function of the outsourced vectors: range bounds must stay inside
// the 1..NumLocations slot domain (the clear engine's per-ID maps would
// also count out-of-domain IDs from never-validated ingests, which no slot
// exists for), and SumFare must be exactly the full zone range (the
// encoding carries a single total-fare slot).
func (db *DB) Supports(q query.Query) bool {
	if q.Validate() != nil || q.Kind == query.JoinCount {
		return false
	}
	if db.real != nil {
		switch q.Kind {
		case query.RangeCount:
			if q.Lo < 1 || q.Hi > record.NumLocations {
				return false
			}
		case query.SumFare:
			if q.Lo != 1 || q.Hi != record.NumLocations {
				return false
			}
		}
	}
	return true
}

// Sealer exposes the shared record sealer for the owner side.
func (db *DB) Sealer() *seal.Sealer { return db.sealer }

// Setup implements edb.Database.
func (db *DB) Setup(rs []record.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.setup {
		return edb.ErrAlreadySetup
	}
	db.setup = true
	return db.ingest(rs)
}

// Update implements edb.Database.
func (db *DB) Update(rs []record.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.setup {
		return edb.ErrNotSetup
	}
	return db.ingest(rs)
}

// ingest runs the encode-encrypt-upload path. In the fast simulation mode
// records round-trip through the sealer (as they would over the wire) and
// fold into the clear-text incremental aggregates; in true-crypto mode each
// record instead becomes a vector of Paillier ciphertexts folded into the
// provider's homomorphic sum, and the clear aggregates are never touched —
// answers can only come out of the decryption pipeline.
func (db *DB) ingest(rs []record.Record) error {
	if db.real != nil {
		if err := db.real.ingest(rs); err != nil {
			return err
		}
	} else {
		cts, err := db.sealer.SealAll(rs)
		if err != nil {
			return fmt.Errorf("crypte: sealing batch: %w", err)
		}
		opened, err := db.sealer.OpenAll(cts)
		if err != nil {
			return fmt.Errorf("crypte: ingest: %w", err)
		}
		db.agg.ObserveAll(opened)
	}
	dummies := len(rs) - record.CountReal(rs)
	db.stats.Add(len(rs), dummies, EncodingBytes)
	return nil
}

// ingest encodes a batch and folds it into the running ciphertext sums,
// one SumVector per provider so the homomorphic additions fan out across
// slots on the shared worker pool.
func (ra *realAHE) ingest(rs []record.Record) error {
	byProv := map[record.Provider][][]ahe.Ciphertext{}
	for i, r := range rs {
		enc, err := ra.pipe.EncodeRecord(r)
		if err != nil {
			return fmt.Errorf("crypte: record %d: %w", i, err)
		}
		byProv[r.Provider] = append(byProv[r.Provider], enc)
	}
	pk := ra.pipe.PublicKey()
	for prov, encs := range byProv {
		if acc := ra.agg[prov]; acc != nil {
			encs = append([][]ahe.Ciphertext{acc}, encs...)
		}
		sum, err := pk.SumVector(encs...)
		if err != nil {
			return fmt.Errorf("crypte: aggregating %v: %w", prov, err)
		}
		ra.agg[prov] = sum
	}
	return nil
}

// answer produces the exact (pre-noise) answer of q from the ciphertext
// aggregates: the release boundary re-randomizes exactly the slots the
// query reveals (drawing zero encryptions from the server-side pool), and
// the analyst side decrypts them through the CRT pipeline.
func (ra *realAHE) answer(q query.Query) (query.Answer, error) {
	slots, err := releaseSlots(q)
	if err != nil {
		return query.Answer{}, err
	}
	enc := ra.agg[q.Provider]
	if enc == nil {
		// Nothing outsourced for this provider: the exact answer is zero,
		// in the shape the decryption path (and the clear engine) would use.
		return zeroAnswer(q)
	}
	// Re-randomize the published slots concurrently: like encoding and
	// decryption, the per-slot work fans out over the shared worker pool
	// (the randomizer pool's Get is concurrency-safe), so a wide release
	// does not serialize hundreds of exponentiations on the query path.
	release := append([]ahe.Ciphertext(nil), enc...)
	if err := ahe.ParallelSlotsErr(len(slots), func(lo, hi int) error {
		for _, i := range slots[lo:hi] {
			ct, err := ra.pipe.releasePool.Rerandomize(enc[i])
			if err != nil {
				return err
			}
			release[i] = ct
		}
		return nil
	}); err != nil {
		return query.Answer{}, err
	}
	return ra.pipe.DecryptAnswer(q, release)
}

// Query implements edb.Database. Linear queries aggregate the one-hot
// encodings (dummy records encode all-zero vectors, so they drop out exactly
// as the Appendix-B rewrite prescribes) and the release is perturbed with
// Lap(1/ε_q) per output value — scalar answers get one draw, each group-by
// bin gets an independent draw.
func (db *DB) Query(q query.Query) (query.Answer, edb.Cost, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.setup {
		return query.Answer{}, edb.Cost{}, edb.ErrNotSetup
	}
	if !db.Supports(q) {
		return query.Answer{}, edb.Cost{}, fmt.Errorf("%w: %v on %s", edb.ErrUnsupportedQuery, q.Kind, db.Name())
	}
	var exact query.Answer
	var err error
	if db.real != nil {
		exact, err = db.real.answer(q)
	} else {
		exact, err = db.agg.AnswerFor(q)
	}
	if err != nil {
		return query.Answer{}, edb.Cost{}, err
	}
	ans := db.perturb(q, exact)
	if err := db.spent.Charge("query-release", db.queryEps, dp.Sequential); err != nil {
		return query.Answer{}, edb.Cost{}, err
	}
	cost := db.model.Linear(q.Kind, int64(db.stats.Records))
	return ans, cost, nil
}

// perturb adds the release noise, scaled to the query's L1 sensitivity:
// 1 for counting queries, MaxFareCents for the Q4 SUM extension. Group bins
// are disjoint counting queries, so each bin receives an independent
// Lap(1/ε_q) draw (parallel composition keeps the release at ε_q total).
func (db *DB) perturb(q query.Query, a query.Answer) query.Answer {
	sens := 1.0
	if q.Kind == query.SumFare {
		sens = float64(record.MaxFareCents)
	}
	out := a.Clone()
	if len(out.Groups) == 0 {
		out.Scalar = out.Scalar + sens*db.noise.SampleNoise()
		if out.Scalar < 0 {
			out.Scalar = 0
		}
		return out
	}
	for i := range out.Groups {
		out.Groups[i] += sens * db.noise.SampleNoise()
		if out.Groups[i] < 0 {
			out.Groups[i] = 0
		}
	}
	return out
}

// QueryEpsilon returns the per-release analyst budget.
func (db *DB) QueryEpsilon() float64 { return db.queryEps }

// ReleasesSoFar returns how many noisy releases the engine has produced.
func (db *DB) ReleasesSoFar() int { return db.spent.Uses("query-release") }

// Stats implements edb.Database.
func (db *DB) Stats() edb.StorageStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// RealAHE reports whether the DB runs in true-crypto mode.
func (db *DB) RealAHE() bool { return db.real != nil }

var _ edb.Database = (*DB)(nil)
