package crypte

import (
	"errors"
	"testing"

	"dpsync/internal/dp"
	"dpsync/internal/edb"
	"dpsync/internal/query"
	"dpsync/internal/record"
)

// realPipeline is shared across the true-crypto tests; 384-bit keys keep
// the many per-record exponentiations affordable in CI.
var realPipeline = mustRealPipeline()

func mustRealPipeline() *AHEPipeline {
	p, err := NewAHEPipeline(384)
	if err != nil {
		panic(err)
	}
	return p
}

func realBatches() [][]record.Record {
	return [][]record.Record{
		{
			{PickupTime: 1, PickupID: 60, Provider: record.YellowCab, FareCents: 1200},
			{PickupTime: 2, PickupID: 60, Provider: record.YellowCab, FareCents: 800},
			record.NewDummy(record.YellowCab),
			{PickupTime: 3, PickupID: 120, Provider: record.YellowCab, FareCents: 2000},
			{PickupTime: 3, PickupID: 9, Provider: record.GreenTaxi, FareCents: 350},
		},
		{
			{PickupTime: 7, PickupID: 75, Provider: record.YellowCab, FareCents: 450},
			record.NewDummy(record.GreenTaxi),
			{PickupTime: 9, PickupID: 60, Provider: record.GreenTaxi, FareCents: 150},
			{PickupTime: 11, PickupID: 265, Provider: record.YellowCab, FareCents: 99},
			// Out-of-domain pickup: ingest never calls record.Validate, and
			// the clear engine keys this record's fare outside the 1..265
			// range every query reads — the encoder must exclude it too.
			{PickupTime: 12, PickupID: 300, Provider: record.YellowCab, FareCents: 500},
		},
	}
}

func sameAnswer(a, b query.Answer) bool {
	if a.Scalar != b.Scalar || len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Groups {
		if a.Groups[i] != b.Groups[i] {
			return false
		}
	}
	return true
}

// TestRealAHEMatchesClearDifferential is the acceptance test of true-crypto
// mode: a real-AHE DB and a clear-text DB fed the same batches and the same
// seeded noise stream must release bit-identical answers — which can only
// happen if the pre-noise decrypted aggregates equal the incremental
// plaintext aggregates exactly. Pre-noise equality is additionally checked
// directly against the clear engine.
func TestRealAHEMatchesClearDifferential(t *testing.T) {
	const seed = 20260727
	realDB, err := New(WithRealAHE(realPipeline), WithNoiseSource(dp.NewSeededSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	clearDB, err := New(WithNoiseSource(dp.NewSeededSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if !realDB.RealAHE() || clearDB.RealAHE() {
		t.Fatal("RealAHE flags wrong")
	}

	batches := realBatches()
	if err := realDB.Setup(batches[0]); err != nil {
		t.Fatal(err)
	}
	if err := clearDB.Setup(batches[0]); err != nil {
		t.Fatal(err)
	}
	if err := realDB.Update(batches[1]); err != nil {
		t.Fatal(err)
	}
	if err := clearDB.Update(batches[1]); err != nil {
		t.Fatal(err)
	}

	queries := []query.Query{
		query.Q1(),
		query.Q2(),
		query.Q4(),
		{Kind: query.RangeCount, Provider: record.GreenTaxi, Lo: 1, Hi: 80},
		{Kind: query.GroupCount, Provider: record.GreenTaxi},
		// A window past every ingested pickup probes the all-zero-bins edge.
		{Kind: query.RangeCount, Provider: record.YellowCab, Lo: 200, Hi: 265},
	}
	for _, q := range queries {
		// Pre-noise: the decrypted release must equal the clear-text
		// incremental statistic bit-for-bit.
		exactReal, err := realDB.real.answer(q)
		if err != nil {
			t.Fatalf("%v: real exact: %v", q, err)
		}
		exactClear, err := clearDB.agg.AnswerFor(q)
		if err != nil {
			t.Fatalf("%v: clear exact: %v", q, err)
		}
		if !sameAnswer(exactReal, exactClear) {
			t.Fatalf("%v: pre-noise answers differ: real %+v clear %+v", q, exactReal, exactClear)
		}
		// Post-noise: identical noise streams must produce identical
		// releases.
		ansReal, _, err := realDB.Query(q)
		if err != nil {
			t.Fatalf("%v: real query: %v", q, err)
		}
		ansClear, _, err := clearDB.Query(q)
		if err != nil {
			t.Fatalf("%v: clear query: %v", q, err)
		}
		if !sameAnswer(ansReal, ansClear) {
			t.Fatalf("%v: noisy answers differ: real %+v clear %+v", q, ansReal, ansClear)
		}
	}
	if realDB.ReleasesSoFar() != len(queries) {
		t.Errorf("releases = %d, want %d", realDB.ReleasesSoFar(), len(queries))
	}
}

// TestRealAHEEmptyProviderShapes pins the zeroAnswer path: a provider with
// no ciphertext aggregate must answer every supported kind with exactly the
// clear engine's shape and values — Groups of domain width for histograms,
// zero Scalar otherwise.
func TestRealAHEEmptyProviderShapes(t *testing.T) {
	realDB, err := New(WithRealAHE(realPipeline), WithNoiseSource(dp.NewSeededSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	clearDB, err := New(WithNoiseSource(dp.NewSeededSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if err := realDB.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if err := clearDB.Setup(nil); err != nil {
		t.Fatal(err)
	}
	for _, q := range []query.Query{query.Q1(), query.Q2(), query.Q4()} {
		exactReal, err := realDB.real.answer(q)
		if err != nil {
			t.Fatalf("%v: real exact: %v", q, err)
		}
		exactClear, err := clearDB.agg.AnswerFor(q)
		if err != nil {
			t.Fatalf("%v: clear exact: %v", q, err)
		}
		if !sameAnswer(exactReal, exactClear) {
			t.Fatalf("%v: empty-provider answers differ: real %+v clear %+v", q, exactReal, exactClear)
		}
		if q.Kind == query.GroupCount && len(exactReal.Groups) != record.NumLocations {
			t.Fatalf("%v: groups len %d, want %d", q, len(exactReal.Groups), record.NumLocations)
		}
	}
}

// TestRealAHEStorageAccounting: true-crypto mode reports the same
// outsourced widths as the simulation (the encodings ARE the 6.4 KiB the
// model charges for).
func TestRealAHEStorageAccounting(t *testing.T) {
	db, err := New(WithRealAHE(realPipeline), WithNoiseSource(dp.NewSeededSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Setup(realBatches()[0]); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Records != 5 || s.DummyRecords != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Bytes != 5*EncodingBytes || s.DummyBytes != 1*EncodingBytes {
		t.Errorf("byte accounting = %+v", s)
	}
}

// TestRealAHESubrangeSumFareUnsupported: the single fare slot cannot
// express a sub-range fare sum, so true-crypto mode must refuse rather
// than silently answer with the full-range total.
func TestRealAHESubrangeSumFareUnsupported(t *testing.T) {
	db, err := New(WithRealAHE(realPipeline), WithNoiseSource(dp.NewSeededSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Setup(nil); err != nil {
		t.Fatal(err)
	}
	sub := query.Query{Kind: query.SumFare, Provider: record.YellowCab, Lo: 10, Hi: 20}
	if db.Supports(sub) {
		t.Error("sub-range SumFare must be unsupported in true-crypto mode")
	}
	if _, _, err := db.Query(sub); !errors.Is(err, edb.ErrUnsupportedQuery) {
		t.Errorf("sub-range SumFare error = %v", err)
	}
	if !db.Supports(query.Q4()) {
		t.Error("full-range SumFare must stay supported")
	}
	// Queries reaching outside the 1..NumLocations slot domain are also
	// inexpressible: the clear engine would count out-of-domain IDs from
	// never-validated ingests, which no encoding slot exists for.
	for _, q := range []query.Query{
		{Kind: query.RangeCount, Provider: record.YellowCab, Lo: 200, Hi: 400},
		{Kind: query.RangeCount, Provider: record.YellowCab, Lo: 0, Hi: 100},
		{Kind: query.SumFare, Provider: record.YellowCab, Lo: 1, Hi: 400},
	} {
		if db.Supports(q) {
			t.Errorf("out-of-domain query %+v must be unsupported in true-crypto mode", q)
		}
	}
	if !db.Supports(query.Q1()) {
		t.Error("in-domain RangeCount must stay supported")
	}
	// The clear simulation path is unaffected.
	clear, err := New(WithNoiseSource(dp.NewSeededSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !clear.Supports(sub) {
		t.Error("clear path must keep supporting sub-range SumFare")
	}
}

// TestRealAHEJoinStillRejected: the operator repertoire does not grow with
// the crypto.
func TestRealAHEJoinStillRejected(t *testing.T) {
	db, err := New(WithRealAHE(realPipeline), WithNoiseSource(dp.NewSeededSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if db.Supports(query.Q3()) {
		t.Error("join must stay unsupported")
	}
	if _, _, err := db.Query(query.Q3()); !errors.Is(err, edb.ErrUnsupportedQuery) {
		t.Errorf("join error = %v", err)
	}
}
