package crypte

import (
	"math"
	"testing"

	"dpsync/internal/dp"
	"dpsync/internal/query"
	"dpsync/internal/record"
)

// TestSumFareNoiseScaledToSensitivity: the Q4 release must carry
// Lap(MaxFareCents/eps_q) noise — orders of magnitude wider than count
// noise, matching the L1 sensitivity of a bounded-fare SUM.
func TestSumFareNoiseScaledToSensitivity(t *testing.T) {
	db, err := New(WithQueryEpsilon(1), WithNoiseSource(dp.NewSeededSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if !db.Supports(query.Q4()) {
		t.Fatal("Cryptε should support the linear Q4 extension")
	}
	var rs []record.Record
	const n, fare = 50, 2000
	for i := 0; i < n; i++ {
		rs = append(rs, record.Record{
			PickupTime: record.Tick(i + 1), PickupID: 10,
			Provider: record.YellowCab, FareCents: fare,
		})
	}
	if err := db.Setup(rs); err != nil {
		t.Fatal(err)
	}
	const trials = 400
	truth := float64(n * fare)
	var absErr, sum float64
	for i := 0; i < trials; i++ {
		ans, _, err := db.Query(query.Q4())
		if err != nil {
			t.Fatal(err)
		}
		absErr += math.Abs(ans.Scalar - truth)
		sum += ans.Scalar
	}
	meanAbs := absErr / trials
	// E|Lap(5000/1)| = 5000; far beyond count noise, far below the answer.
	if meanAbs < 1000 || meanAbs > 12000 {
		t.Errorf("mean |noise| = %v, want ≈ 5000 (sensitivity-scaled)", meanAbs)
	}
	if mean := sum / trials; math.Abs(mean-truth)/truth > 0.05 {
		t.Errorf("mean answer %v drifted from truth %v", mean, truth)
	}
}
