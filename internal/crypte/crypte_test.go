package crypte

import (
	"errors"
	"math"
	"testing"

	"dpsync/internal/dp"
	"dpsync/internal/edb"
	"dpsync/internal/query"
	"dpsync/internal/record"
)

func newDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func yellow(tick int, id uint16) record.Record {
	return record.Record{PickupTime: record.Tick(tick), PickupID: id, Provider: record.YellowCab}
}

func TestLifecycleErrors(t *testing.T) {
	db := newDB(t)
	if err := db.Update([]record.Record{yellow(1, 1)}); !errors.Is(err, edb.ErrNotSetup) {
		t.Errorf("Update before Setup: %v", err)
	}
	if _, _, err := db.Query(query.Q1()); !errors.Is(err, edb.ErrNotSetup) {
		t.Errorf("Query before Setup: %v", err)
	}
	if err := db.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Setup(nil); !errors.Is(err, edb.ErrAlreadySetup) {
		t.Errorf("second Setup: %v", err)
	}
}

func TestJoinUnsupported(t *testing.T) {
	db := newDB(t)
	if db.Supports(query.Q3()) {
		t.Error("Cryptε must not support joins")
	}
	if err := db.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Query(query.Q3()); !errors.Is(err, edb.ErrUnsupportedQuery) {
		t.Errorf("join error = %v, want ErrUnsupportedQuery", err)
	}
}

func TestLeakageClass(t *testing.T) {
	db := newDB(t)
	if db.Leakage() != edb.LDP {
		t.Errorf("leakage = %v, want L-DP", db.Leakage())
	}
	if err := edb.CheckCompatibility(db); err != nil {
		t.Errorf("Cryptε should be DP-Sync compatible: %v", err)
	}
}

func TestAnswersAreNoisyButCalibrated(t *testing.T) {
	db := newDB(t, WithNoiseSource(dp.NewSeededSource(5)))
	var rs []record.Record
	for i := 0; i < 100; i++ {
		rs = append(rs, yellow(i, 75)) // all inside Q1's range
	}
	if err := db.Setup(rs); err != nil {
		t.Fatal(err)
	}
	const trials = 300
	var sum, sumAbsErr float64
	for i := 0; i < trials; i++ {
		ans, _, err := db.Query(query.Q1())
		if err != nil {
			t.Fatal(err)
		}
		sum += ans.Scalar
		sumAbsErr += math.Abs(ans.Scalar - 100)
	}
	mean := sum / trials
	if math.Abs(mean-100) > 0.2 {
		t.Errorf("noisy mean = %v, want ~100", mean)
	}
	// E|Lap(1/3)| = 1/3; allow generous slack.
	meanAbs := sumAbsErr / trials
	if meanAbs < 0.05 || meanAbs > 1.0 {
		t.Errorf("mean |noise| = %v, want ≈ 1/3", meanAbs)
	}
	if db.ReleasesSoFar() != trials {
		t.Errorf("releases = %d, want %d", db.ReleasesSoFar(), trials)
	}
}

func TestGroupAnswerNoisePerBin(t *testing.T) {
	db := newDB(t, WithNoiseSource(dp.NewSeededSource(6)))
	if err := db.Setup([]record.Record{yellow(0, 10), yellow(1, 10), yellow(2, 20)}); err != nil {
		t.Fatal(err)
	}
	ans, _, err := db.Query(query.Q2())
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Groups) != record.NumLocations {
		t.Fatalf("groups = %d", len(ans.Groups))
	}
	// Bins are never negative after clamping.
	for i, g := range ans.Groups {
		if g < 0 {
			t.Errorf("bin %d negative: %v", i, g)
		}
	}
	// The occupied bins should be near their true counts.
	if math.Abs(ans.Groups[9]-2) > 4 || math.Abs(ans.Groups[19]-1) > 4 {
		t.Errorf("occupied bins far off: %v, %v", ans.Groups[9], ans.Groups[19])
	}
}

func TestDummiesExcludedFromAnswers(t *testing.T) {
	db := newDB(t, WithNoiseSource(dp.NewSeededSource(7)))
	rs := []record.Record{yellow(0, 75)}
	for i := 0; i < 50; i++ {
		rs = append(rs, record.NewDummy(record.YellowCab))
	}
	if err := db.Setup(rs); err != nil {
		t.Fatal(err)
	}
	var sum float64
	const trials = 200
	for i := 0; i < trials; i++ {
		ans, _, err := db.Query(query.Q1())
		if err != nil {
			t.Fatal(err)
		}
		sum += ans.Scalar
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.3 {
		t.Errorf("mean = %v, want ~1 (dummies excluded)", mean)
	}
}

func TestDummiesInflateCostAndStorage(t *testing.T) {
	db := newDB(t, WithNoiseSource(dp.NewSeededSource(8)))
	if err := db.Setup([]record.Record{yellow(0, 1)}); err != nil {
		t.Fatal(err)
	}
	_, c1, err := db.Query(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	var batch []record.Record
	for i := 0; i < 200; i++ {
		batch = append(batch, record.NewDummy(record.YellowCab))
	}
	if err := db.Update(batch); err != nil {
		t.Fatal(err)
	}
	_, c2, err := db.Query(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Seconds <= c1.Seconds {
		t.Error("dummy records must inflate QET")
	}
	s := db.Stats()
	if s.DummyBytes != 200*EncodingBytes {
		t.Errorf("dummy bytes = %d", s.DummyBytes)
	}
}

func TestWithQueryEpsilon(t *testing.T) {
	db := newDB(t, WithQueryEpsilon(10), WithNoiseSource(dp.NewSeededSource(9)))
	if db.QueryEpsilon() != 10 {
		t.Errorf("eps = %v", db.QueryEpsilon())
	}
	if err := db.Setup([]record.Record{yellow(0, 75)}); err != nil {
		t.Fatal(err)
	}
	// With eps=10 the noise is tiny; answers hug the truth.
	var worst float64
	for i := 0; i < 100; i++ {
		ans, _, err := db.Query(query.Q1())
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(ans.Scalar - 1); d > worst {
			worst = d
		}
	}
	if worst > 2 {
		t.Errorf("eps=10 noise too large: worst dev %v", worst)
	}
}

func TestScalarClampedAtZero(t *testing.T) {
	db := newDB(t, WithQueryEpsilon(0.05), WithNoiseSource(dp.NewSeededSource(10)))
	if err := db.Setup(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		ans, _, err := db.Query(query.Q1())
		if err != nil {
			t.Fatal(err)
		}
		if ans.Scalar < 0 {
			t.Fatalf("negative count released: %v", ans.Scalar)
		}
	}
}

func TestEncodingBytesMatchesPaperScale(t *testing.T) {
	// 18,429 records × EncodingBytes ≈ the paper's 943.5 Mb (=117.9 MB).
	total := float64(18429*EncodingBytes) * 8 / 1e6 // megabits
	if total < 850 || total < 0 || total > 1050 {
		t.Errorf("Yellow dataset would occupy %.1f Mb, paper reports 943.5 Mb", total)
	}
}
