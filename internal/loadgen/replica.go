package loadgen

import (
	"fmt"
	"os"
	"time"

	"dpsync/internal/cluster"
	"dpsync/internal/gateway"
	"dpsync/internal/seal"
	"dpsync/internal/telemetry"
	"dpsync/internal/wire"
)

// ReplicaConfig parameterizes the read-replica harness: a two-node cluster
// (internal/cluster) where the primary ingests the full sync drive and the
// follower's read plane serves the analyst query mix. The client routes
// queries to the follower with client.WithReadReplica and falls back to the
// primary whenever the replica refuses (typed staleness, unknown owner, or
// a severed link) — the harness measures how much of the read load the
// follower actually absorbed.
type ReplicaConfig struct {
	Owners int
	Ticks  int
	// QueryMix is the analyst queries per owner per tick (default 4 — one
	// full Q1–Q4 cycle).
	QueryMix int
	// Conns / Codec pass through to the drive (defaults as in Config).
	Conns int
	Codec wire.Codec
	// Shards configures both nodes' gateways (0 = GOMAXPROCS).
	Shards int
	// SyncEpsilon is the per-sync ledger charge on both nodes.
	SyncEpsilon float64
	// Seed drives the workload (default 1).
	Seed uint64
	// LeaseTTL is the cluster election lease (0 = 250ms, harness-scaled).
	LeaseTTL time.Duration
}

// ReplicaReport is the harness result: the drive's Report (whose Replica*
// fields are the client-side read-plane counters) plus the follower's own
// read-plane accounting.
type ReplicaReport struct {
	Report
	// PlaneQueries / PlaneStale are the follower-side totals: read requests
	// it served and typed freshness refusals it issued.
	PlaneQueries int64 `json:"replica_plane_queries"`
	PlaneStale   int64 `json:"replica_plane_stale,omitempty"`
	// PlaneCacheHits / PlaneCacheMisses are the replica's noise-reuse answer
	// cache counters; PlaneRebuilds counts backend materializations (one per
	// owner per replicated-clock advance observed by a read).
	PlaneCacheHits   int64 `json:"replica_qcache_hits"`
	PlaneCacheMisses int64 `json:"replica_qcache_misses"`
	PlaneRebuilds    int64 `json:"replica_rebuilds"`
	// FollowerApplied is the replica's applied stream-entry count when the
	// drive finished — the freshness cursor the served answers were cut at.
	FollowerApplied uint64 `json:"replica_applied"`
}

// RunReplica executes the read-replica experiment.
func RunReplica(cfg ReplicaConfig) (ReplicaReport, error) {
	if cfg.Owners <= 0 || cfg.Ticks <= 0 {
		return ReplicaReport{}, fmt.Errorf("loadgen: replica harness needs owners and ticks > 0")
	}
	if cfg.QueryMix <= 0 {
		cfg.QueryMix = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 250 * time.Millisecond
	}
	key, err := seal.NewRandomKey()
	if err != nil {
		return ReplicaReport{}, err
	}
	dirA, err := os.MkdirTemp("", "dpsync-replica-a-*")
	if err != nil {
		return ReplicaReport{}, err
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "dpsync-replica-b-*")
	if err != nil {
		return ReplicaReport{}, err
	}
	defer os.RemoveAll(dirB)

	lease := cluster.NewMemLease(nil)
	gwCfg := gateway.Config{
		Key: key, Shards: cfg.Shards, SyncEpsilon: cfg.SyncEpsilon, SnapshotEvery: 64,
	}
	a, err := cluster.Start(cluster.Config{
		Addr: "127.0.0.1:0", NodeID: "node-a", StoreDir: dirA,
		Gateway: gwCfg, Lease: lease, LeaseTTL: cfg.LeaseTTL,
		Telemetry: telemetry.New(),
	})
	if err != nil {
		return ReplicaReport{}, err
	}
	defer a.Close()
	b, err := cluster.Start(cluster.Config{
		Addr: "127.0.0.1:0", NodeID: "node-b", StoreDir: dirB,
		Gateway: gwCfg, Lease: lease, LeaseTTL: cfg.LeaseTTL,
		Telemetry: telemetry.New(),
	})
	if err != nil {
		return ReplicaReport{}, err
	}
	defer b.Close()
	if a.Role() != cluster.RolePrimary {
		return ReplicaReport{}, fmt.Errorf("node-a did not start as primary")
	}
	for deadline := time.Now().Add(5 * time.Second); ; {
		if a.Stats().Hub.Followers == 1 {
			break
		}
		if time.Now().After(deadline) {
			return ReplicaReport{}, fmt.Errorf("follower never attached to the primary")
		}
		time.Sleep(time.Millisecond)
	}

	rep, err := Run(Config{
		Owners: cfg.Owners, Ticks: cfg.Ticks,
		Addr: a.Addr(), Key: key, ReplicaAddr: b.Addr(),
		QueryMix: cfg.QueryMix, Conns: cfg.Conns, Codec: cfg.Codec,
		Seed: cfg.Seed, SyncEpsilon: cfg.SyncEpsilon,
	})
	if err != nil {
		return ReplicaReport{}, err
	}
	if rep.ReplicaServed == 0 {
		return ReplicaReport{}, fmt.Errorf("loadgen: follower served no queries (read plane unmeasured; %d fallbacks)",
			rep.ReplicaFallbacks)
	}

	st := b.Stats()
	return ReplicaReport{
		Report:           rep,
		PlaneQueries:     st.ReadPlane.Queries,
		PlaneStale:       st.ReadPlane.Stale,
		PlaneCacheHits:   st.ReadPlane.CacheHits,
		PlaneCacheMisses: st.ReadPlane.CacheMisses,
		PlaneRebuilds:    st.ReadPlane.Rebuilds,
		FollowerApplied:  st.Follower.Applied,
	}, nil
}
