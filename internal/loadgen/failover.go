package loadgen

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"dpsync/internal/client"
	"dpsync/internal/cluster"
	"dpsync/internal/core"
	"dpsync/internal/edb"
	"dpsync/internal/gateway"
	"dpsync/internal/record"
	"dpsync/internal/seal"
	"dpsync/internal/telemetry"
)

// FailoverConfig parameterizes the failover harness: for each seed, the same
// owner traces are driven through an uninterrupted in-memory reference
// gateway and through a two-node cluster (internal/cluster) whose primary is
// killed — no flush, no drain — at a seed-derived tick. The follower must
// win the lease, promote over its replicated prefix, and finish the trace
// through the reconnecting clients; the run fails unless every owner's
// transcript is bit-identical to the reference and every ε ledger equal.
type FailoverConfig struct {
	Owners int
	Ticks  int
	// Seeds drive the workload and the kill tick; each seed is one full
	// reference+failover experiment.
	Seeds []uint64
	// SyncEpsilon is the per-sync ledger charge (see gateway.Config).
	SyncEpsilon float64
	// Fsync passes through to both nodes' stores.
	Fsync bool
	// Shards configures every gateway in the experiment (0 = GOMAXPROCS).
	Shards int
	// HistoryWindow configures tiered history on both nodes (0 = full
	// history in RAM).
	HistoryWindow int
	// LeaseTTL is the election lease — the fencing window failover must wait
	// out after a kill (0 = 250ms, scaled for a harness rather than the
	// production DefaultLeaseTTL).
	LeaseTTL time.Duration
}

// FailoverRun is one seed's outcome.
type FailoverRun struct {
	Seed     uint64 `json:"seed"`
	KillTick int    `json:"kill_tick"`
	// FailoverMs is the client-observed outage: primary kill → first sync
	// acknowledged by the promoted follower. It contains the lease TTL the
	// successor waits out, so it is dominated by FailoverConfig.LeaseTTL.
	FailoverMs float64 `json:"failover_ms"`
	// ReplicationLagMs is the mean primary-commit → replica-apply latency
	// over every entry the follower applied before promotion.
	ReplicationLagMs float64 `json:"replication_lag_ms"`
	// ReplicaSyncsPerSec is the follower's live-stream apply throughput over
	// the pre-kill phase of the drive.
	ReplicaSyncsPerSec float64 `json:"replica_syncs_per_sec"`
	// ReplicaApplied / ReplicaSnapshots are the follower's sealed counters at
	// promotion: stream entries folded into its WAL and snapshot transfers
	// it needed (nonzero means the catch-up ring had already trimmed past
	// its cursor at least once).
	ReplicaApplied   uint64 `json:"replica_applied"`
	ReplicaSnapshots uint64 `json:"replica_snapshots,omitempty"`
}

// FailoverReport is the harness result; Runs has one entry per seed, all
// verified (RunFailover errors instead of reporting an unverified run).
type FailoverReport struct {
	Owners int           `json:"owners"`
	Ticks  int           `json:"ticks"`
	Runs   []FailoverRun `json:"runs"`
}

// failoverTimer is the shared stopwatch: the kill instant, and the first
// sync acknowledged after it (CAS-once, any owner).
type failoverTimer struct {
	killedAt   atomic.Int64
	firstAfter atomic.Int64
}

func (t *failoverTimer) observe() {
	if t.killedAt.Load() != 0 {
		t.firstAfter.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// failoverProbe taps an owner's session to timestamp the first sync that
// completes after the kill — the client-observed end of the outage.
type failoverProbe struct {
	edb.Database
	timer *failoverTimer
}

func (p *failoverProbe) Setup(rs []record.Record) error {
	err := p.Database.Setup(rs)
	if err == nil {
		p.timer.observe()
	}
	return err
}

func (p *failoverProbe) Update(rs []record.Record) error {
	err := p.Database.Update(rs)
	if err == nil {
		p.timer.observe()
	}
	return err
}

// failoverFleet is the cluster run's client side: every owner multiplexed
// over one failover-aware connection (address rotation + unbounded resync),
// so a single healed sync re-uploads every owner's unreplicated tail.
type failoverFleet struct {
	owners []*core.Owner
	conn   *client.GatewayConn
	timer  *failoverTimer
}

func (f *failoverFleet) dial(primary, standby string, key []byte, ticks int) error {
	conn, err := client.DialGateway(primary, key,
		client.WithAddrs(standby),
		client.WithReconnect(ticks),
		client.WithResyncWindow(-1),
	)
	if err != nil {
		return err
	}
	f.conn = conn
	return nil
}

func (f *failoverFleet) setup(n int, seed uint64) error {
	f.owners = make([]*core.Owner, n)
	for i := 0; i < n; i++ {
		strat, err := ownerStrategy(i, seed)
		if err != nil {
			return err
		}
		probe := &failoverProbe{Database: f.conn.Owner(ownerName(i)), timer: f.timer}
		owner, err := core.New(core.Config{Strategy: strat, Database: probe})
		if err != nil {
			return err
		}
		if err := owner.Setup([]record.Record{{
			PickupTime: 0, PickupID: uint16(i%record.NumLocations + 1), Provider: record.YellowCab,
		}}); err != nil {
			return fmt.Errorf("owner %d setup: %w", i, err)
		}
		f.owners[i] = owner
	}
	return nil
}

// drive interleaves ticks from..to across all owners, identically to the
// crash harness (and thus to the reference fleet).
func (f *failoverFleet) drive(from, to int) error {
	for t := from; t <= to; t++ {
		for i, owner := range f.owners {
			phase := i % 3
			var err error
			if (t+phase)%3 == 0 {
				err = owner.Tick(record.Record{
					PickupTime: record.Tick(t),
					PickupID:   uint16((i+t)%record.NumLocations + 1),
					Provider:   record.YellowCab,
				})
			} else {
				err = owner.Tick()
			}
			if err != nil {
				return fmt.Errorf("owner %d tick %d: %w", i, t, err)
			}
		}
	}
	return nil
}

// RunFailover executes the failover experiment for every seed.
func RunFailover(cfg FailoverConfig) (FailoverReport, error) {
	// Ticks ≥ 6 guarantees at least three post-kill ticks, which guarantees
	// a record tick for the always-sync SUR owners — the sync that forces
	// the reconnect (and resync of every owner) the measurement needs.
	if cfg.Owners <= 0 || cfg.Ticks < 6 {
		return FailoverReport{}, fmt.Errorf("loadgen: failover harness needs owners > 0 and ticks >= 6")
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []uint64{1, 2, 3}
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 250 * time.Millisecond
	}
	rep := FailoverReport{Owners: cfg.Owners, Ticks: cfg.Ticks}
	for _, seed := range cfg.Seeds {
		run, err := runFailoverSeed(cfg, seed)
		if err != nil {
			return FailoverReport{}, fmt.Errorf("loadgen: seed %d: %w", seed, err)
		}
		rep.Runs = append(rep.Runs, run)
	}
	return rep, nil
}

func runFailoverSeed(cfg FailoverConfig, seed uint64) (FailoverRun, error) {
	key, err := seal.NewRandomKey()
	if err != nil {
		return FailoverRun{}, err
	}

	// Uninterrupted reference: the same traces through an in-memory gateway
	// (the crash harness fleet drives the identical tick schedule).
	refGW, err := gateway.New("127.0.0.1:0", gateway.Config{
		Key: key, Shards: cfg.Shards, SyncEpsilon: cfg.SyncEpsilon,
	})
	if err != nil {
		return FailoverRun{}, err
	}
	go func() { _ = refGW.Serve() }()
	ref := &crashFleet{}
	if err := ref.dial(refGW.Addr(), key); err != nil {
		refGW.Close()
		return FailoverRun{}, err
	}
	if err := ref.setup(cfg.Owners, seed); err == nil {
		err = ref.drive(1, cfg.Ticks)
	}
	if err != nil {
		ref.conn.Close()
		refGW.Close()
		return FailoverRun{}, err
	}
	wantPattern := make([]string, cfg.Owners)
	wantLedger := make([]string, cfg.Owners)
	for i := 0; i < cfg.Owners; i++ {
		wantPattern[i] = refGW.ObservedPattern(ownerName(i)).String()
		b, err := refGW.ObservedLedger(ownerName(i)).MarshalBinary()
		if err != nil {
			ref.conn.Close()
			refGW.Close()
			return FailoverRun{}, err
		}
		wantLedger[i] = string(b)
	}
	ref.conn.Close()
	if err := refGW.Close(); err != nil {
		return FailoverRun{}, err
	}

	// Two-node cluster: node-a takes the lease, node-b follows. The kill
	// lands at a seed-derived tick boundary chosen to leave at least three
	// ticks for the promoted node to serve.
	killTick := 1 + int(seed%uint64(cfg.Ticks-3))
	dirA, err := os.MkdirTemp("", "dpsync-failover-a-*")
	if err != nil {
		return FailoverRun{}, err
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "dpsync-failover-b-*")
	if err != nil {
		return FailoverRun{}, err
	}
	defer os.RemoveAll(dirB)

	lease := cluster.NewMemLease(nil)
	gwCfg := gateway.Config{
		Key: key, Shards: cfg.Shards, SyncEpsilon: cfg.SyncEpsilon,
		Fsync: cfg.Fsync, SnapshotEvery: 64, HistoryWindow: cfg.HistoryWindow,
	}
	// Each node gets its own registry: the harness runs both nodes in one
	// process, and shared series would merge the primary's and follower's
	// counters into nonsense. This also keeps the failover measurement on
	// the telemetry-on code path, same as production.
	a, err := cluster.Start(cluster.Config{
		Addr: "127.0.0.1:0", NodeID: "node-a", StoreDir: dirA,
		Gateway: gwCfg, Lease: lease, LeaseTTL: cfg.LeaseTTL,
		Telemetry: telemetry.New(),
	})
	if err != nil {
		return FailoverRun{}, err
	}
	defer a.Kill()
	b, err := cluster.Start(cluster.Config{
		Addr: "127.0.0.1:0", NodeID: "node-b", StoreDir: dirB,
		Gateway: gwCfg, Lease: lease, LeaseTTL: cfg.LeaseTTL,
		Telemetry: telemetry.New(),
	})
	if err != nil {
		return FailoverRun{}, err
	}
	defer b.Close()
	if a.Role() != cluster.RolePrimary {
		return FailoverRun{}, fmt.Errorf("node-a did not start as primary")
	}
	// Wait for the follower to attach before loading, so the replication
	// throughput measurement covers the whole drive.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if a.Stats().Hub.Followers == 1 {
			break
		}
		if time.Now().After(deadline) {
			return FailoverRun{}, fmt.Errorf("follower never attached to the primary")
		}
		time.Sleep(time.Millisecond)
	}

	timer := &failoverTimer{}
	fleet := &failoverFleet{timer: timer}
	if err := fleet.dial(a.Addr(), b.Addr(), key, cfg.Ticks); err != nil {
		return FailoverRun{}, err
	}
	defer fleet.conn.Close()
	driveStart := time.Now()
	if err := fleet.setup(cfg.Owners, seed); err == nil {
		err = fleet.drive(1, killTick)
	}
	if err != nil {
		return FailoverRun{}, err
	}
	liveElapsed := time.Since(driveStart)
	appliedAtKill := b.Stats().Follower.Applied

	// Kill the primary — crash semantics: no flush, no drain, the lease left
	// to expire. The remaining ticks drive through the client's failover
	// path: rotate to node-b, wait out its refusals, resync, finish.
	timer.killedAt.Store(time.Now().UnixNano())
	a.Kill()
	if err := fleet.drive(killTick+1, cfg.Ticks); err != nil {
		return FailoverRun{}, err
	}
	select {
	case <-b.Promoted():
	case <-time.After(30 * cfg.LeaseTTL):
		return FailoverRun{}, fmt.Errorf("node-b never promoted")
	}
	first := timer.firstAfter.Load()
	if first == 0 {
		return FailoverRun{}, fmt.Errorf("no sync completed after the kill (failover unmeasured)")
	}

	// Continuity: every owner's transcript and ledger on the promoted node
	// must be bit-identical to the uninterrupted reference.
	gw := b.Gateway()
	if gw == nil {
		return FailoverRun{}, fmt.Errorf("promoted node has no serving gateway")
	}
	for i := 0; i < cfg.Owners; i++ {
		if got := gw.ObservedPattern(ownerName(i)).String(); got != wantPattern[i] {
			return FailoverRun{}, fmt.Errorf("%s transcript diverged at kill tick %d:\n got: %s\nwant: %s",
				ownerName(i), killTick, got, wantPattern[i])
		}
		lb, err := gw.ObservedLedger(ownerName(i)).MarshalBinary()
		if err != nil {
			return FailoverRun{}, err
		}
		if string(lb) != wantLedger[i] {
			return FailoverRun{}, fmt.Errorf("%s ledger diverged at kill tick %d (double spend or lost charge)",
				ownerName(i), killTick)
		}
	}

	st := b.Stats().Follower
	run := FailoverRun{
		Seed:             seed,
		KillTick:         killTick,
		FailoverMs:       float64(first-timer.killedAt.Load()) / 1e6,
		ReplicaApplied:   st.Applied,
		ReplicaSnapshots: st.Snapshots,
	}
	if st.Applied > 0 {
		run.ReplicationLagMs = float64(st.LagNs) / float64(st.Applied) / 1e6
	}
	if s := liveElapsed.Seconds(); s > 0 {
		run.ReplicaSyncsPerSec = float64(appliedAtKill) / s
	}
	return run, nil
}
