// Package loadgen drives synthetic multi-owner DP-Sync traffic against a
// live gateway and measures the serving layer: sync throughput, per-sync
// round-trip latency quantiles, and wire bytes per sync. It is the
// measurement harness behind cmd/dpsync-loadgen and the gateway entries in
// BENCH_baseline.json.
//
// Each simulated owner is a full core.Owner stack — local cache, real
// synchronization strategy (the mix cycles SUR, DP-Timer, DP-ANT), dummy
// padding, client-side sealing — running against its own namespace of a
// shared gateway over pipelined multiplexed connections. The load is
// therefore shaped like the paper's deployment (§3, §7): many independent
// owners, each hiding its own update pattern, one outsourced server.
package loadgen

import (
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"runtime"
	"time"

	"dpsync/internal/client"
	"dpsync/internal/core"
	"dpsync/internal/dp"
	"dpsync/internal/edb"
	"dpsync/internal/faultnet"
	"dpsync/internal/gateway"
	"dpsync/internal/metrics"
	"dpsync/internal/query"
	"dpsync/internal/record"
	"dpsync/internal/seal"
	"dpsync/internal/strategy"
	"dpsync/internal/telemetry"
	"dpsync/internal/wire"
)

// Config parameterizes a load run.
type Config struct {
	// Owners is the number of concurrent data owners (namespaces); Ticks is
	// how many logical ticks each owner lives.
	Owners int
	Ticks  int
	// Addr targets an external gateway; empty starts an in-process one on a
	// loopback port (the self-contained benchmark mode). Key is the shared
	// data key — required with Addr, generated otherwise.
	Addr string
	Key  []byte
	// Conns is how many multiplexed TCP connections the owners share
	// (default 4, capped at Owners). Window is the per-connection in-flight
	// cap (default client.DefaultWindow). Codec defaults to binary.
	Conns  int
	Window int
	Codec  wire.Codec
	// Workers bounds concurrent owner drivers (default 4×GOMAXPROCS,
	// clamped to [8, 64]: drivers spend their time blocked on round trips,
	// so oversubscribing cores is the point).
	Workers int
	// Shards configures the in-process gateway (0 = GOMAXPROCS).
	Shards int
	// Seed derives every owner's noise stream and arrival phase; a fixed
	// seed makes the workload (though not scheduling) reproducible.
	Seed uint64
	// Verify cross-checks, per owner, that the gateway-observed transcript
	// length matches the owner's own pattern bookkeeping (in-process only).
	Verify bool
	// Durable runs the in-process gateway with the internal/store
	// durability subsystem (WAL + snapshots) and, after the drive, closes
	// the gateway and reopens it from disk to measure recovery — with
	// Verify, every owner's recovered transcript is checked bit-identical
	// to the pre-close one. In-process mode only.
	Durable bool
	// StoreDir is the durability directory (empty: a fresh temp dir,
	// removed when Run returns). Fsync and SyncEpsilon pass through to the
	// gateway's store configuration.
	StoreDir    string
	Fsync       bool
	SyncEpsilon float64
	// HistoryWindow bounds each tenant's in-RAM committed-batch tail in
	// durable mode; past it, history spills to on-disk segments and
	// snapshots carry manifests (see gateway.Config.HistoryWindow). 0
	// keeps the full history in RAM.
	HistoryWindow int
	// Churn drops live gateway connections on a seeded schedule for the
	// whole drive; the client reconnect/resume layer must heal each outage
	// transparently (Verify still demands exact transcripts). Implies
	// reconnect-enabled connections.
	Churn bool
	// ChurnInterval is the mean time between connection drops (default
	// 25ms).
	ChurnInterval time.Duration
	// Faults routes every gateway connection through an internal/faultnet
	// injector: seeded resets, torn mid-frame writes, stalls, and
	// duplicated frame delivery. Implies reconnect-enabled connections.
	Faults bool
	// FaultBudget bounds disruptive injected faults (resets + truncations)
	// across the run; 0 means 4 per connection. Stalls and duplicates are
	// unbudgeted.
	FaultBudget int64
	// QueryMix issues this many analyst queries per owner per tick, cycling
	// the paper's Q1–Q4 kinds, interleaved with the sync traffic. Repeated
	// specs between commits exercise the gateway's noise-reuse answer cache
	// (and, with ReplicaAddr, the follower read plane).
	QueryMix int
	// ReplicaAddr routes the query half of the drive to a follower's read
	// plane (client.WithReadReplica); syncs still go to Addr. Queries that
	// the replica refuses or cannot serve fall back to the primary.
	ReplicaAddr string
	// OpenLoop switches the drive from closed-loop (each owner ticks as
	// fast as round trips allow) to an open-loop arrival model: ticks
	// arrive on a seeded Poisson process with a bursty mixture, and
	// per-tick latency is measured from the *scheduled* arrival time — so
	// a stalled server accrues queueing delay instead of silently slowing
	// the arrival rate (no coordinated omission).
	OpenLoop bool
	// MeanArrival is the open-loop mean interarrival time per owner tick
	// (default 2ms).
	MeanArrival time.Duration
	// MetricsOut, when non-empty, writes the in-process gateway's final
	// telemetry snapshot — the same JSON shape as the admin plane's /varz —
	// to this file after the drive completes. In-process mode only.
	MetricsOut string
	// TraceOut, when non-empty, attaches a span tracer to the in-process
	// gateway and writes its sampled span trees — the same JSON shape as the
	// admin plane's /tracez?format=json — to this file after the drive
	// completes. In-process mode only.
	TraceOut string
	// TraceSample is the tracing cadence for TraceOut: one trace per N
	// admitted requests (0: the tracer default). Slow syncs are always
	// captured regardless.
	TraceSample int
	// Logger, when non-nil, is attached to the in-process gateway (an
	// external gateway's logs are out of reach). Nil keeps the drive silent.
	Logger *slog.Logger
}

// Report is the measurement result.
type Report struct {
	Owners  int    `json:"owners"`
	Ticks   int    `json:"ticks"`
	Conns   int    `json:"conns"`
	Workers int    `json:"workers"`
	Codec   string `json:"codec"`
	// Syncs counts EDB update-protocol runs (setup + strategy-driven
	// uploads) across all owners; SyncRecords the sealed records they
	// carried (real + dummy).
	Syncs       int64   `json:"syncs"`
	SyncRecords int64   `json:"sync_records"`
	Elapsed     float64 `json:"elapsed_seconds"`
	SyncsPerSec float64 `json:"syncs_per_sec"`
	// P50Ms / P99Ms are per-sync round-trip latencies (seal + frame +
	// gateway dispatch + backend ingest + response).
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// BytesPerSync is total protocol bytes (both directions, all message
	// types) divided by Syncs.
	BytesPerSync float64 `json:"bytes_per_sync"`
	BytesOut     int64   `json:"bytes_out"`
	BytesIn      int64   `json:"bytes_in"`
	Verified     int     `json:"verified_owners,omitempty"`
	// Durable-mode measurements: mean WAL append→commit latency, the group
	// commit factor (entries per flush/fsync round), snapshot rotations,
	// and the close→reopen recovery wall-clock with the owner count the
	// recovery reconstructed.
	Durable         bool    `json:"durable,omitempty"`
	WALAppendUs     float64 `json:"wal_append_us,omitempty"`
	WALGroupFactor  float64 `json:"wal_group_factor,omitempty"`
	WALSnapshots    int64   `json:"wal_snapshots,omitempty"`
	RecoveryMs      float64 `json:"recovery_ms,omitempty"`
	RecoveredOwners int     `json:"recovered_owners,omitempty"`
	// Tiered-history measurements: the configured window, batches and
	// bytes spilled out of gateway RAM, and history segment files created.
	HistoryWindow int   `json:"history_window,omitempty"`
	SpillBatches  int64 `json:"spill_batches,omitempty"`
	SpillBytes    int64 `json:"spill_bytes,omitempty"`
	SpillSegments int64 `json:"spill_segments,omitempty"`
	// Fleet-robustness measurements. Reconnects counts transport losses the
	// client layer healed (churn drops + injected severances);
	// ChurnResumeMs is the mean outage→resume wall-clock across them.
	// OpenLoopP99Ms is the open-loop per-tick p99 measured from scheduled
	// arrivals. BackpressureSheds counts requests the in-process gateway
	// refused with the typed backpressure error. FaultsInjected totals
	// faultnet injections of every kind.
	Reconnects        int64   `json:"reconnects,omitempty"`
	ChurnResumeMs     float64 `json:"churn_resume_ms"`
	OpenLoopP99Ms     float64 `json:"open_loop_p99_ms"`
	BackpressureSheds int64   `json:"backpressure_sheds"`
	FaultsInjected    int64   `json:"faults_injected,omitempty"`
	// Read-path measurements (QueryMix > 0). Queries counts analyst queries
	// completed; QueryQPS is their throughput over the drive. QcacheHitRatio
	// is hits/(hits+misses) of the in-process gateway's noise-reuse answer
	// cache — every hit is a response re-served without touching the backend
	// or the ε ledger. The Replica* fields are client-side read-plane
	// counters (ReplicaAddr set): queries the replica answered, typed
	// freshness refusals, and fallbacks to the primary.
	Queries          int64   `json:"queries,omitempty"`
	QueryQPS         float64 `json:"query_qps,omitempty"`
	QueryP99Ms       float64 `json:"query_p99_ms,omitempty"`
	QcacheHitRatio   float64 `json:"qcache_hit_ratio,omitempty"`
	ReplicaServed    int64   `json:"replica_served,omitempty"`
	ReplicaStale     int64   `json:"replica_stale,omitempty"`
	ReplicaFallbacks int64   `json:"replica_fallbacks,omitempty"`
	ReplicaQueryQPS  float64 `json:"replica_query_qps,omitempty"`
}

// timedDB wraps an owner's database handle and records the round-trip
// latency of every sync (Setup/Update) in milliseconds.
type timedDB struct {
	edb.Database
	latencies []float64
	records   int64
	// openLat is filled by the open-loop driver: per-tick latency in ms
	// measured from the scheduled arrival, syncing ticks or not.
	openLat []float64
	// queries / queryLat are filled by the query-mix driver: analyst query
	// round trips in ms, cache hits and misses alike.
	queries  int64
	queryLat []float64
}

// queryKinds is the analyst mix the drive cycles: the paper's four query
// shapes (range count, group count, join count, fare sum). Reusing the same
// four specs between commits is deliberate — repeats are what the
// noise-reuse answer cache exists to serve.
var queryKinds = []query.Query{query.Q1(), query.Q2(), query.Q3(), query.Q4()}

func (t *timedDB) time(op func() error, n int) error {
	start := time.Now()
	err := op()
	if err == nil {
		t.latencies = append(t.latencies, float64(time.Since(start).Nanoseconds())/1e6)
		t.records += int64(n)
	}
	return err
}

func (t *timedDB) Setup(rs []record.Record) error {
	return t.time(func() error { return t.Database.Setup(rs) }, len(rs))
}

func (t *timedDB) Update(rs []record.Record) error {
	return t.time(func() error { return t.Database.Update(rs) }, len(rs))
}

// ownerStrategy builds owner i's strategy: the mix cycles the paper's
// always-on baseline and the two DP strategies, seeded per owner.
func ownerStrategy(i int, seed uint64) (strategy.Strategy, error) {
	switch i % 3 {
	case 0:
		return strategy.NewSUR(), nil
	case 1:
		return strategy.NewTimer(strategy.TimerConfig{
			Epsilon: 0.5, Period: 10, FlushInterval: 60, FlushSize: 4,
			Source: dp.NewSeededSource(seed + uint64(i)*2654435761),
		})
	default:
		return strategy.NewANT(strategy.ANTConfig{
			Epsilon: 0.5, Threshold: 5, FlushInterval: 60, FlushSize: 4,
			Source: dp.NewSeededSource(seed + uint64(i)*2654435761 + 1),
		})
	}
}

// Run executes the load and returns the measurements.
func Run(cfg Config) (Report, error) {
	if cfg.Owners <= 0 || cfg.Ticks <= 0 {
		return Report{}, fmt.Errorf("loadgen: owners and ticks must be positive")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Conns > cfg.Owners {
		cfg.Conns = cfg.Owners
	}
	if cfg.Window <= 0 {
		cfg.Window = client.DefaultWindow
	}
	if !cfg.Codec.Valid() {
		cfg.Codec = wire.CodecBinary
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4 * runtime.GOMAXPROCS(0)
		if cfg.Workers < 8 {
			cfg.Workers = 8
		}
		if cfg.Workers > 64 {
			cfg.Workers = 64
		}
	}
	if cfg.Workers > cfg.Owners {
		cfg.Workers = cfg.Owners
	}

	// Target gateway: external or in-process.
	var gw *gateway.Gateway
	var tracer *telemetry.Tracer
	reg := telemetry.New()
	addr, key := cfg.Addr, cfg.Key
	storeDir := cfg.StoreDir
	if addr == "" {
		if key == nil {
			var err error
			key, err = seal.NewRandomKey()
			if err != nil {
				return Report{}, err
			}
		}
		if cfg.Durable && storeDir == "" {
			dir, err := os.MkdirTemp("", "dpsync-loadgen-*")
			if err != nil {
				return Report{}, err
			}
			defer os.RemoveAll(dir)
			storeDir = dir
		}
		// Each run gets its own registry so concurrent or sequential runs in
		// one process never merge series; the benchmarks therefore measure
		// the telemetry-on serving path, which is what production runs.
		gwCfg := gateway.Config{Key: key, Shards: cfg.Shards, Telemetry: reg, Logger: cfg.Logger}
		if cfg.TraceOut != "" {
			tracer = telemetry.NewTracer(telemetry.TracerConfig{SampleEvery: cfg.TraceSample})
			gwCfg.Tracer = tracer
		}
		if cfg.Durable {
			gwCfg.StoreDir = storeDir
			gwCfg.Fsync = cfg.Fsync
			gwCfg.SyncEpsilon = cfg.SyncEpsilon
			gwCfg.HistoryWindow = cfg.HistoryWindow
		}
		var err error
		gw, err = gateway.New("127.0.0.1:0", gwCfg)
		if err != nil {
			return Report{}, err
		}
		go func() { _ = gw.Serve() }()
		defer gw.Close()
		addr = gw.Addr()
	} else if key == nil {
		return Report{}, fmt.Errorf("loadgen: external gateway requires a key")
	} else if cfg.Durable {
		return Report{}, fmt.Errorf("loadgen: durable mode drives an in-process gateway (drop -addr)")
	} else if cfg.Verify && cfg.ReplicaAddr != "" {
		// External verification reads RemoteStats, which -replica-addr routes
		// to the follower; a replica lagging by an in-flight frame would fail
		// the check spuriously (a lagging-but-committed answer is not an
		// error, so no primary fallback fires).
		return Report{}, fmt.Errorf("loadgen: -verify races replica lag (drop -replica-addr)")
	}

	dialOpts := []client.GatewayOption{client.WithCodec(cfg.Codec), client.WithWindow(cfg.Window)}
	if cfg.ReplicaAddr != "" {
		dialOpts = append(dialOpts, client.WithReadReplica(cfg.ReplicaAddr))
	}
	var inj *faultnet.Injector
	if cfg.Faults {
		budget := cfg.FaultBudget
		if budget <= 0 {
			budget = int64(4 * cfg.Conns)
		}
		inj = faultnet.New(faultnet.DefaultConfig(int64(cfg.Seed), budget))
		dialOpts = append(dialOpts, client.WithDialer(inj.Dialer(nil)))
	}
	if cfg.Churn || cfg.Faults {
		// A dropped or injected-dead transport must heal, not fail the run:
		// that healing (redial + replay + resume) is what's under test.
		dialOpts = append(dialOpts, client.WithReconnect(0))
	}
	conns := make([]*client.GatewayConn, cfg.Conns)
	for i := range conns {
		c, err := client.DialGateway(addr, key, dialOpts...)
		if err != nil {
			return Report{}, err
		}
		defer c.Close()
		conns[i] = c
	}

	// The churn schedule drops one random connection per interval for the
	// whole drive; each drop forces a full redial + in-flight replay +
	// delta resume on every owner multiplexed over that connection.
	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	if cfg.Churn {
		interval := cfg.ChurnInterval
		if interval <= 0 {
			interval = 25 * time.Millisecond
		}
		go func() {
			defer close(churnDone)
			rng := rand.New(rand.NewSource(int64(cfg.Seed)*7919 + 17))
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-churnStop:
					return
				case <-tick.C:
					conns[rng.Intn(len(conns))].Drop()
				}
			}
		}()
	} else {
		close(churnDone)
	}
	stopChurn := func() {
		select {
		case <-churnDone:
		default:
			close(churnStop)
			<-churnDone
		}
	}
	defer stopChurn()

	// driveOwner lives one owner's whole life: setup, Ticks ticks with a
	// deterministic arrival phase, through a timing wrapper.
	driveOwner := func(i int) (*timedDB, error) {
		strat, err := ownerStrategy(i, cfg.Seed)
		if err != nil {
			return nil, err
		}
		session := conns[i%len(conns)].Owner(ownerName(i))
		tdb := &timedDB{Database: session}
		owner, err := core.New(core.Config{Strategy: strat, Database: tdb})
		if err != nil {
			return nil, err
		}
		if err := owner.Setup([]record.Record{{
			PickupTime: 0, PickupID: uint16(i%record.NumLocations + 1), Provider: record.YellowCab,
		}}); err != nil {
			return nil, fmt.Errorf("owner %d setup: %w", i, err)
		}
		phase := i % 3
		// Open-loop arrivals: a seeded Poisson process with a bursty
		// mixture (some arrivals land back-to-back). The schedule never
		// resynchronizes to "now" — if the serving layer stalls, later
		// arrivals are already due and their measured latency includes the
		// queueing delay (coordinated-omission-free).
		var arrivals *rand.Rand
		var next time.Time
		meanArrival := cfg.MeanArrival
		if cfg.OpenLoop {
			if meanArrival <= 0 {
				meanArrival = 2 * time.Millisecond
			}
			arrivals = rand.New(rand.NewSource(int64(cfg.Seed)*1_000_003 + int64(i)))
			next = time.Now()
		}
		for t := 1; t <= cfg.Ticks; t++ {
			if cfg.OpenLoop {
				if arrivals.Float64() < 0.2 {
					// Burst continuation: this tick arrives with the last.
				} else {
					gap := time.Duration(arrivals.ExpFloat64() * float64(meanArrival))
					if gap > 10*meanArrival {
						gap = 10 * meanArrival
					}
					next = next.Add(gap)
				}
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
			var terr error
			if (t+phase)%3 == 0 {
				terr = owner.Tick(record.Record{
					PickupTime: record.Tick(t),
					PickupID:   uint16((i+t)%record.NumLocations + 1),
					Provider:   record.YellowCab,
				})
			} else {
				terr = owner.Tick()
			}
			if terr != nil {
				return nil, fmt.Errorf("owner %d tick %d: %w", i, t, terr)
			}
			// The analyst mix rides the same tick cadence as the syncs:
			// QueryMix queries per tick, cycling the four kinds, straight to
			// the session (queries bypass the strategy — they are reads of
			// released state, not part of the owner's update pattern).
			for q := 0; q < cfg.QueryMix; q++ {
				spec := queryKinds[(t*cfg.QueryMix+q)%len(queryKinds)]
				qStart := time.Now()
				if _, _, qerr := session.Query(spec); qerr != nil {
					return nil, fmt.Errorf("owner %d query tick %d: %w", i, t, qerr)
				}
				tdb.queries++
				tdb.queryLat = append(tdb.queryLat, float64(time.Since(qStart).Nanoseconds())/1e6)
			}
			if cfg.OpenLoop {
				tdb.openLat = append(tdb.openLat, float64(time.Since(next).Nanoseconds())/1e6)
			}
		}
		if cfg.Verify {
			if gw != nil {
				got := gw.ObservedPattern(session.OwnerID()).Updates()
				if want := owner.Pattern().Updates(); got != want {
					return nil, fmt.Errorf("owner %d: gateway observed %d updates, owner posted %d", i, got, want)
				}
			} else {
				// External gateway: its transcript is out of reach, but its
				// split-blind stats must agree with the owner's bookkeeping.
				remote, err := session.RemoteStats()
				if err != nil {
					return nil, fmt.Errorf("owner %d remote stats: %w", i, err)
				}
				if want := owner.Pattern().Updates(); remote.Updates != want {
					return nil, fmt.Errorf("owner %d: gateway counted %d updates, owner posted %d", i, remote.Updates, want)
				}
			}
			if _, _, err := owner.Query(query.Q1()); err != nil {
				return nil, fmt.Errorf("owner %d query: %w", i, err)
			}
		}
		return tdb, nil
	}

	type result struct {
		tdb *timedDB
		err error
	}
	jobs := make(chan int)
	results := make(chan result)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			for i := range jobs {
				tdb, err := driveOwner(i)
				results <- result{tdb, err}
			}
		}()
	}

	start := time.Now()
	go func() {
		for i := 0; i < cfg.Owners; i++ {
			jobs <- i
		}
		close(jobs)
	}()

	lat := metrics.NewSeries("sync_rtt_ms")
	openLat := metrics.NewSeries("open_loop_tick_ms")
	queryLat := metrics.NewSeries("query_rtt_ms")
	var syncs, syncRecords, queries int64
	var firstErr error
	verified := 0
	for done := 0; done < cfg.Owners; done++ {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		for _, ms := range r.tdb.latencies {
			lat.Add(record.Tick(lat.Len()), ms)
		}
		for _, ms := range r.tdb.openLat {
			openLat.Add(record.Tick(openLat.Len()), ms)
		}
		for _, ms := range r.tdb.queryLat {
			queryLat.Add(record.Tick(queryLat.Len()), ms)
		}
		syncs += int64(len(r.tdb.latencies))
		syncRecords += r.tdb.records
		queries += r.tdb.queries
		if cfg.Verify {
			verified++
		}
	}
	elapsed := time.Since(start)
	stopChurn()
	if firstErr != nil {
		return Report{}, firstErr
	}

	var bytesOut, bytesIn int64
	for _, c := range conns {
		bytesOut += c.BytesOut()
		bytesIn += c.BytesIn()
	}
	rep := Report{
		Owners:      cfg.Owners,
		Ticks:       cfg.Ticks,
		Conns:       cfg.Conns,
		Workers:     cfg.Workers,
		Codec:       cfg.Codec.String(),
		Syncs:       syncs,
		SyncRecords: syncRecords,
		Elapsed:     elapsed.Seconds(),
		BytesOut:    bytesOut,
		BytesIn:     bytesIn,
		Verified:    verified,
	}
	if elapsed > 0 {
		rep.SyncsPerSec = float64(syncs) / elapsed.Seconds()
	}
	if syncs > 0 {
		rep.P50Ms = lat.Quantile(0.50)
		rep.P99Ms = lat.Quantile(0.99)
		rep.BytesPerSync = float64(bytesOut+bytesIn) / float64(syncs)
	}
	if openLat.Len() > 0 {
		rep.OpenLoopP99Ms = openLat.Quantile(0.99)
	}
	if queries > 0 {
		rep.Queries = queries
		rep.QueryP99Ms = queryLat.Quantile(0.99)
		if elapsed > 0 {
			rep.QueryQPS = float64(queries) / elapsed.Seconds()
		}
	}
	if gw != nil && cfg.QueryMix > 0 {
		qs := gw.QueryCacheStats()
		if total := qs.Hits + qs.Misses; total > 0 {
			rep.QcacheHitRatio = float64(qs.Hits) / float64(total)
		}
	}
	if cfg.ReplicaAddr != "" {
		var served, staleN, fallbacks int64
		for _, c := range conns {
			s, st, fb := c.ReplicaStats()
			served += s
			staleN += st
			fallbacks += fb
		}
		rep.ReplicaServed = served
		rep.ReplicaStale = staleN
		rep.ReplicaFallbacks = fallbacks
		if elapsed > 0 {
			rep.ReplicaQueryQPS = float64(served) / elapsed.Seconds()
		}
	}
	var reconnects int64
	var reconnectTotal time.Duration
	for _, c := range conns {
		n, total := c.ReconnectStats()
		reconnects += n
		reconnectTotal += total
	}
	rep.Reconnects = reconnects
	if reconnects > 0 {
		rep.ChurnResumeMs = float64(reconnectTotal.Nanoseconds()) / 1e6 / float64(reconnects)
	}
	if gw != nil {
		rep.BackpressureSheds = gw.Sheds()
	}
	if inj != nil {
		rep.FaultsInjected = inj.Counts().Total()
	}

	// The snapshot is taken before the durable close below: closing the
	// gateway unregisters its scrape-time collectors, and the dump should
	// reflect the gateway that served the drive.
	if cfg.MetricsOut != "" {
		if gw == nil {
			return Report{}, fmt.Errorf("loadgen: -metrics-out snapshots the in-process gateway (drop -addr)")
		}
		if err := dumpMetrics(cfg.MetricsOut, reg); err != nil {
			return Report{}, err
		}
	}
	if cfg.TraceOut != "" {
		if gw == nil {
			return Report{}, fmt.Errorf("loadgen: -trace-out snapshots the in-process gateway (drop -addr)")
		}
		if err := dumpTraces(cfg.TraceOut, tracer); err != nil {
			return Report{}, err
		}
	}

	// Durable mode: harvest the WAL measurements, then close the gateway
	// and reopen it from disk — recovery wall-clock plus (with Verify) a
	// bit-identical transcript check per owner.
	if cfg.Durable && gw != nil {
		rep.Durable = true
		rep.HistoryWindow = cfg.HistoryWindow
		if m, ok := gw.StoreMetrics(); ok {
			rep.WALAppendUs = m.AvgAppendUs()
			if m.Commits > 0 {
				rep.WALGroupFactor = float64(m.Appends) / float64(m.Commits)
			}
			rep.WALSnapshots = m.Snapshots
			rep.SpillBatches = m.SpillBatches
			rep.SpillBytes = m.SpillBytes
			rep.SpillSegments = m.HistorySegments
		}
		var want map[string]string
		if cfg.Verify {
			want = make(map[string]string, cfg.Owners)
			for i := 0; i < cfg.Owners; i++ {
				want[ownerName(i)] = gw.ObservedPattern(ownerName(i)).String()
			}
		}
		for _, c := range conns {
			c.Close()
		}
		if err := gw.Close(); err != nil {
			return Report{}, fmt.Errorf("loadgen: graceful close: %w", err)
		}
		start := time.Now()
		gw2, err := gateway.New("127.0.0.1:0", gateway.Config{
			Key: key, Shards: cfg.Shards,
			StoreDir: storeDir, Fsync: cfg.Fsync, SyncEpsilon: cfg.SyncEpsilon,
			HistoryWindow: cfg.HistoryWindow,
		})
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: recovery: %w", err)
		}
		rep.RecoveryMs = float64(time.Since(start).Nanoseconds()) / 1e6
		defer gw2.Close()
		rep.RecoveredOwners = gw2.Recovery().Owners
		if rep.RecoveredOwners != cfg.Owners {
			return Report{}, fmt.Errorf("loadgen: recovered %d owners, want %d", rep.RecoveredOwners, cfg.Owners)
		}
		if cfg.Verify {
			for name, w := range want {
				if got := gw2.ObservedPattern(name).String(); got != w {
					return Report{}, fmt.Errorf("loadgen: %s transcript diverged after recovery:\n got: %s\nwant: %s", name, got, w)
				}
			}
		}
	}
	return rep, nil
}

// ownerName is the canonical namespace ID for owner i, shared by the drive
// loop and the durable-recovery verification.
func ownerName(i int) string { return fmt.Sprintf("owner-%06d", i) }

// dumpTraces writes the tracer's sampled and slow span trees to path in the
// admin plane's /tracez?format=json shape.
func dumpTraces(path string, tracer *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("loadgen: trace out: %w", err)
	}
	if err := telemetry.WriteTraceJSON(f, tracer.Dump()); err != nil {
		f.Close()
		return fmt.Errorf("loadgen: trace out: %w", err)
	}
	return f.Close()
}

// dumpMetrics writes the registry's final snapshot to path in the admin
// plane's /varz JSON shape.
func dumpMetrics(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("loadgen: metrics out: %w", err)
	}
	if err := telemetry.WriteVarz(f, reg.Snapshot()); err != nil {
		f.Close()
		return fmt.Errorf("loadgen: metrics out: %w", err)
	}
	return f.Close()
}
