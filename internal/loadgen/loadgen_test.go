package loadgen

import (
	"testing"

	"dpsync/internal/wire"
)

func TestRunSmallLoad(t *testing.T) {
	rep, err := Run(Config{Owners: 9, Ticks: 40, Conns: 2, Seed: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified != 9 {
		t.Errorf("verified = %d, want 9", rep.Verified)
	}
	// Every owner syncs at least once (setup), SUR owners far more.
	if rep.Syncs < 9 {
		t.Errorf("syncs = %d, want >= 9", rep.Syncs)
	}
	if rep.SyncsPerSec <= 0 {
		t.Errorf("syncs/sec = %v", rep.SyncsPerSec)
	}
	if rep.P99Ms < rep.P50Ms || rep.P50Ms <= 0 {
		t.Errorf("quantiles p50=%v p99=%v", rep.P50Ms, rep.P99Ms)
	}
	if rep.BytesPerSync <= 0 || rep.BytesOut <= 0 || rep.BytesIn <= 0 {
		t.Errorf("bytes: per-sync=%v out=%d in=%d", rep.BytesPerSync, rep.BytesOut, rep.BytesIn)
	}
	if rep.Codec != "binary" {
		t.Errorf("codec = %q", rep.Codec)
	}
}

func TestRunJSONCodec(t *testing.T) {
	rep, err := Run(Config{Owners: 3, Ticks: 15, Codec: wire.CodecJSON, Seed: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Codec != "json" {
		t.Errorf("codec = %q", rep.Codec)
	}
	if rep.Syncs < 3 {
		t.Errorf("syncs = %d", rep.Syncs)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Owners: 0, Ticks: 10}); err == nil {
		t.Error("zero owners accepted")
	}
	if _, err := Run(Config{Owners: 1, Ticks: 1, Addr: "127.0.0.1:9", Key: nil}); err == nil {
		t.Error("external gateway without key accepted")
	}
}
