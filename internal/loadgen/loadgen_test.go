package loadgen

import (
	"testing"
	"time"

	"dpsync/internal/wire"
)

func TestRunSmallLoad(t *testing.T) {
	rep, err := Run(Config{Owners: 9, Ticks: 40, Conns: 2, Seed: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified != 9 {
		t.Errorf("verified = %d, want 9", rep.Verified)
	}
	// Every owner syncs at least once (setup), SUR owners far more.
	if rep.Syncs < 9 {
		t.Errorf("syncs = %d, want >= 9", rep.Syncs)
	}
	if rep.SyncsPerSec <= 0 {
		t.Errorf("syncs/sec = %v", rep.SyncsPerSec)
	}
	if rep.P99Ms < rep.P50Ms || rep.P50Ms <= 0 {
		t.Errorf("quantiles p50=%v p99=%v", rep.P50Ms, rep.P99Ms)
	}
	if rep.BytesPerSync <= 0 || rep.BytesOut <= 0 || rep.BytesIn <= 0 {
		t.Errorf("bytes: per-sync=%v out=%d in=%d", rep.BytesPerSync, rep.BytesOut, rep.BytesIn)
	}
	if rep.Codec != "binary" {
		t.Errorf("codec = %q", rep.Codec)
	}
}

func TestRunJSONCodec(t *testing.T) {
	rep, err := Run(Config{Owners: 3, Ticks: 15, Codec: wire.CodecJSON, Seed: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Codec != "json" {
		t.Errorf("codec = %q", rep.Codec)
	}
	if rep.Syncs < 3 {
		t.Errorf("syncs = %d", rep.Syncs)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Owners: 0, Ticks: 10}); err == nil {
		t.Error("zero owners accepted")
	}
	if _, err := Run(Config{Owners: 1, Ticks: 1, Addr: "127.0.0.1:9", Key: nil}); err == nil {
		t.Error("external gateway without key accepted")
	}
	if _, err := Run(Config{Owners: 1, Ticks: 1, Addr: "127.0.0.1:9", Key: make([]byte, 32), Durable: true}); err == nil {
		t.Error("durable mode against an external gateway accepted")
	}
}

func TestRunDurable(t *testing.T) {
	rep, err := Run(Config{
		Owners: 8, Ticks: 25, Conns: 2, Seed: 3,
		Verify: true, Durable: true, SyncEpsilon: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Durable || rep.Verified != 8 {
		t.Errorf("durable=%v verified=%d", rep.Durable, rep.Verified)
	}
	if rep.WALAppendUs <= 0 || rep.WALGroupFactor < 1 {
		t.Errorf("WAL metrics: append_us=%v group=%v", rep.WALAppendUs, rep.WALGroupFactor)
	}
	if rep.RecoveryMs <= 0 || rep.RecoveredOwners != 8 {
		t.Errorf("recovery: %vms, %d owners", rep.RecoveryMs, rep.RecoveredOwners)
	}
	if rep.Syncs < 8 || rep.SyncsPerSec <= 0 {
		t.Errorf("throughput: %d syncs, %v/sec", rep.Syncs, rep.SyncsPerSec)
	}
}

// TestRunHostileFleet pins the hostile-fleet harness end to end: churn +
// injected faults + open-loop arrivals, with transcript verification still
// demanding exact per-owner transcripts, and the new report keys populated.
func TestRunHostileFleet(t *testing.T) {
	rep, err := Run(Config{
		Owners: 8, Ticks: 25, Conns: 2, Seed: 11, Verify: true,
		Churn: true, ChurnInterval: 5 * time.Millisecond,
		Faults: true, FaultBudget: 6,
		OpenLoop: true, MeanArrival: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified != 8 {
		t.Errorf("verified = %d, want 8", rep.Verified)
	}
	if rep.Reconnects == 0 {
		t.Errorf("no reconnects under churn+faults")
	}
	if rep.ChurnResumeMs <= 0 {
		t.Errorf("churn_resume_ms = %v with %d reconnects", rep.ChurnResumeMs, rep.Reconnects)
	}
	if rep.OpenLoopP99Ms <= 0 {
		t.Errorf("open_loop_p99_ms = %v", rep.OpenLoopP99Ms)
	}
	if rep.FaultsInjected == 0 {
		t.Errorf("fault injector delivered nothing")
	}
}

// TestRunCrashSeeds is the crash-injection coverage the durability
// subsystem is accepted on: ≥3 seeds, each killing the gateway at a
// different tick and verifying transcript + ledger continuity end to end.
func TestRunCrashSeeds(t *testing.T) {
	rep, err := RunCrash(CrashConfig{
		Owners: 6, Ticks: 24, Seeds: []uint64{7, 19, 40}, SyncEpsilon: 0.5, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	ticksSeen := map[int]bool{}
	for _, run := range rep.Runs {
		if run.RecoveredOwners != 6 {
			t.Errorf("seed %d: recovered %d owners", run.Seed, run.RecoveredOwners)
		}
		if run.CrashTick < 1 || run.CrashTick >= 24 {
			t.Errorf("seed %d: crash tick %d out of range", run.Seed, run.CrashTick)
		}
		if run.RecoveryMs <= 0 {
			t.Errorf("seed %d: recovery not measured", run.Seed)
		}
		ticksSeen[run.CrashTick] = true
	}
	if len(ticksSeen) < 2 {
		t.Errorf("crash ticks not spread across seeds: %v", ticksSeen)
	}
}

// TestRunFailoverSeeds drives the two-node failover harness end to end:
// each seed kills the primary mid-trace, requires the follower to promote
// and the clients to heal through it, and verifies continuity (RunFailover
// errors on any transcript or ledger divergence).
func TestRunFailoverSeeds(t *testing.T) {
	rep, err := RunFailover(FailoverConfig{
		Owners: 4, Ticks: 18, Seeds: []uint64{3, 11}, SyncEpsilon: 0.5, Shards: 2,
		LeaseTTL: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	for _, run := range rep.Runs {
		if run.KillTick < 1 || run.KillTick > 15 {
			t.Errorf("seed %d: kill tick %d out of range", run.Seed, run.KillTick)
		}
		if run.FailoverMs <= 0 {
			t.Errorf("seed %d: failover window not measured", run.Seed)
		}
		if run.ReplicaApplied == 0 {
			t.Errorf("seed %d: follower applied nothing before the kill", run.Seed)
		}
	}
}
