package loadgen

import (
	"fmt"
	"os"
	"time"

	"dpsync/internal/client"
	"dpsync/internal/core"
	"dpsync/internal/edb"
	"dpsync/internal/gateway"
	"dpsync/internal/record"
	"dpsync/internal/seal"
)

// CrashConfig parameterizes the crash-injection harness: for each seed, the
// same owner traces are driven through an uninterrupted in-memory reference
// gateway and through a durable gateway that is killed (no flush, no drain)
// at a seed-derived tick and restarted from disk. The run fails unless
// every owner's post-recovery transcript is bit-identical to the reference
// and every recovered ε ledger equals the reference ledger.
type CrashConfig struct {
	Owners int
	Ticks  int
	// Seeds drive the workload and the crash tick; each seed is one full
	// reference+crash experiment.
	Seeds []uint64
	// SyncEpsilon is the per-sync ledger charge (see gateway.Config).
	SyncEpsilon float64
	// Fsync passes through to the durable gateway's store.
	Fsync bool
	// Shards configures both gateways (0 = GOMAXPROCS).
	Shards int
	// HistoryWindow configures the durable gateway's tiered history (0 =
	// full history in RAM): with a window, the kill/restart cycle also
	// exercises spill, manifest snapshots, and streaming recovery.
	HistoryWindow int
}

// CrashRun is one seed's outcome.
type CrashRun struct {
	Seed            uint64  `json:"seed"`
	CrashTick       int     `json:"crash_tick"`
	RecoveryMs      float64 `json:"recovery_ms"`
	RecoveredOwners int     `json:"recovered_owners"`
	// SpillBatches counts history batches the recovered gateway's store
	// moved out of RAM (compaction re-spill plus post-restart spills);
	// zero unless CrashConfig.HistoryWindow is set.
	SpillBatches int64 `json:"spill_batches,omitempty"`
}

// CrashReport is the harness result; Runs has one entry per seed, all
// verified (RunCrash errors instead of reporting an unverified run).
type CrashReport struct {
	Owners int        `json:"owners"`
	Ticks  int        `json:"ticks"`
	Runs   []CrashRun `json:"runs"`
}

// crashSwapDB lets a client-side owner survive the gateway crash: its
// strategy stack keeps running while the session underneath (the embedded
// edb.Database) is swapped for one dialed to the recovered gateway.
type crashSwapDB struct{ edb.Database }

// crashFleet is one run's client side: the owners, their swappable session
// indirections, and the live connection.
type crashFleet struct {
	owners []*core.Owner
	swaps  []*crashSwapDB
	conn   *client.GatewayConn
}

// dial connects the fleet (or re-connects it after a crash) to addr.
func (f *crashFleet) dial(addr string, key []byte) error {
	conn, err := client.DialGateway(addr, key)
	if err != nil {
		return err
	}
	f.conn = conn
	for i, sw := range f.swaps {
		sw.Database = conn.Owner(ownerName(i))
	}
	return nil
}

// setup builds the owners (strategy mix and initial batch identical to the
// main load generator's) and runs their setup protocol.
func (f *crashFleet) setup(n int, seed uint64) error {
	f.owners = make([]*core.Owner, n)
	f.swaps = make([]*crashSwapDB, n)
	for i := 0; i < n; i++ {
		strat, err := ownerStrategy(i, seed)
		if err != nil {
			return err
		}
		f.swaps[i] = &crashSwapDB{Database: f.conn.Owner(ownerName(i))}
		owner, err := core.New(core.Config{Strategy: strat, Database: f.swaps[i]})
		if err != nil {
			return err
		}
		if err := owner.Setup([]record.Record{{
			PickupTime: 0, PickupID: uint16(i%record.NumLocations + 1), Provider: record.YellowCab,
		}}); err != nil {
			return fmt.Errorf("owner %d setup: %w", i, err)
		}
		f.owners[i] = owner
	}
	return nil
}

// drive interleaves ticks from..to across all owners — tick-by-tick, so at
// every tick boundary the fleet is quiesced (each sync acknowledged, hence
// group-committed, before the next request).
func (f *crashFleet) drive(from, to int) error {
	for t := from; t <= to; t++ {
		for i, owner := range f.owners {
			phase := i % 3
			var err error
			if (t+phase)%3 == 0 {
				err = owner.Tick(record.Record{
					PickupTime: record.Tick(t),
					PickupID:   uint16((i+t)%record.NumLocations + 1),
					Provider:   record.YellowCab,
				})
			} else {
				err = owner.Tick()
			}
			if err != nil {
				return fmt.Errorf("owner %d tick %d: %w", i, t, err)
			}
		}
	}
	return nil
}

// RunCrash executes the crash-injection experiment for every seed.
func RunCrash(cfg CrashConfig) (CrashReport, error) {
	if cfg.Owners <= 0 || cfg.Ticks < 3 {
		return CrashReport{}, fmt.Errorf("loadgen: crash harness needs owners > 0 and ticks >= 3")
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []uint64{1, 2, 3}
	}
	rep := CrashReport{Owners: cfg.Owners, Ticks: cfg.Ticks}
	for _, seed := range cfg.Seeds {
		run, err := runCrashSeed(cfg, seed)
		if err != nil {
			return CrashReport{}, fmt.Errorf("loadgen: seed %d: %w", seed, err)
		}
		rep.Runs = append(rep.Runs, run)
	}
	return rep, nil
}

func runCrashSeed(cfg CrashConfig, seed uint64) (CrashRun, error) {
	key, err := seal.NewRandomKey()
	if err != nil {
		return CrashRun{}, err
	}

	// Uninterrupted reference: the same traces through an in-memory gateway.
	refGW, err := gateway.New("127.0.0.1:0", gateway.Config{
		Key: key, Shards: cfg.Shards, SyncEpsilon: cfg.SyncEpsilon,
	})
	if err != nil {
		return CrashRun{}, err
	}
	go func() { _ = refGW.Serve() }()
	ref := &crashFleet{}
	if err := ref.dial(refGW.Addr(), key); err != nil {
		refGW.Close()
		return CrashRun{}, err
	}
	if err := ref.setup(cfg.Owners, seed); err == nil {
		err = ref.drive(1, cfg.Ticks)
	}
	if err != nil {
		ref.conn.Close()
		refGW.Close()
		return CrashRun{}, err
	}
	wantPattern := make([]string, cfg.Owners)
	wantLedger := make([]string, cfg.Owners)
	for i := 0; i < cfg.Owners; i++ {
		wantPattern[i] = refGW.ObservedPattern(ownerName(i)).String()
		b, err := refGW.ObservedLedger(ownerName(i)).MarshalBinary()
		if err != nil {
			ref.conn.Close()
			refGW.Close()
			return CrashRun{}, err
		}
		wantLedger[i] = string(b)
	}
	ref.conn.Close()
	if err := refGW.Close(); err != nil {
		return CrashRun{}, err
	}

	// Crash run: durable gateway, killed at a seed-derived tick boundary.
	crashTick := 1 + int(seed%uint64(cfg.Ticks-1))
	dir, err := os.MkdirTemp("", "dpsync-crash-*")
	if err != nil {
		return CrashRun{}, err
	}
	defer os.RemoveAll(dir)
	mkDurable := func() (*gateway.Gateway, error) {
		gw, err := gateway.New("127.0.0.1:0", gateway.Config{
			Key: key, Shards: cfg.Shards, SyncEpsilon: cfg.SyncEpsilon,
			StoreDir: dir, Fsync: cfg.Fsync, SnapshotEvery: 64,
			HistoryWindow: cfg.HistoryWindow,
		})
		if err != nil {
			return nil, err
		}
		go func() { _ = gw.Serve() }()
		return gw, nil
	}
	gw, err := mkDurable()
	if err != nil {
		return CrashRun{}, err
	}
	fleet := &crashFleet{}
	if err := fleet.dial(gw.Addr(), key); err != nil {
		gw.Kill()
		return CrashRun{}, err
	}
	if err := fleet.setup(cfg.Owners, seed); err == nil {
		err = fleet.drive(1, crashTick)
	}
	if err != nil {
		fleet.conn.Close()
		gw.Kill()
		return CrashRun{}, err
	}
	fleet.conn.Close()
	gw.Kill()

	start := time.Now()
	gw2, err := mkDurable()
	if err != nil {
		return CrashRun{}, fmt.Errorf("recovery: %w", err)
	}
	recoveryMs := float64(time.Since(start).Nanoseconds()) / 1e6
	defer gw2.Close()
	recovered := gw2.Recovery().Owners
	if recovered != cfg.Owners {
		return CrashRun{}, fmt.Errorf("recovered %d owners, want %d", recovered, cfg.Owners)
	}
	if err := fleet.dial(gw2.Addr(), key); err != nil {
		return CrashRun{}, err
	}
	defer fleet.conn.Close()
	if err := fleet.drive(crashTick+1, cfg.Ticks); err != nil {
		return CrashRun{}, err
	}

	// Continuity: transcript bit-identical, ledger equal — per owner.
	for i := 0; i < cfg.Owners; i++ {
		if got := gw2.ObservedPattern(ownerName(i)).String(); got != wantPattern[i] {
			return CrashRun{}, fmt.Errorf("%s transcript diverged at crash tick %d:\n got: %s\nwant: %s",
				ownerName(i), crashTick, got, wantPattern[i])
		}
		b, err := gw2.ObservedLedger(ownerName(i)).MarshalBinary()
		if err != nil {
			return CrashRun{}, err
		}
		if string(b) != wantLedger[i] {
			return CrashRun{}, fmt.Errorf("%s ledger diverged at crash tick %d (double spend or lost charge)",
				ownerName(i), crashTick)
		}
	}
	run := CrashRun{Seed: seed, CrashTick: crashTick, RecoveryMs: recoveryMs, RecoveredOwners: recovered}
	if m, ok := gw2.StoreMetrics(); ok {
		run.SpillBatches = m.SpillBatches
	}
	return run, nil
}
