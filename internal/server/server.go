// Package server hosts the cloud half of the three-party model as a real
// TCP service: it stores sealed ciphertexts, serves queries through the
// ObliDB enclave simulator, and — critically — observes exactly what the
// paper's adversary observes: update times and volumes. The server logs that
// transcript, making the update-pattern leakage a tangible artifact.
package server

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"dpsync/internal/leakage"
	"dpsync/internal/oblidb"
	"dpsync/internal/record"
	"dpsync/internal/seal"
	"dpsync/internal/wire"
)

// Server is a DP-Sync storage server backed by the ObliDB substrate.
type Server struct {
	db  *oblidb.DB
	lis net.Listener
	log *log.Logger

	mu       sync.Mutex
	observed leakage.Pattern // the adversary's view: (tick, volume) per upload
	ticks    int             // server-side logical clock: one tick per update
	closed   bool
	wg       sync.WaitGroup
}

// New creates a server holding the given 32-byte data key (standing in for
// enclave attestation/provisioning) and starts listening on addr
// (e.g. "127.0.0.1:7700"; port 0 picks a free port).
func New(addr string, key []byte, logger *log.Logger) (*Server, error) {
	db, err := oblidb.NewWithKey(key)
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	if logger == nil {
		logger = log.New(logDiscard{}, "", 0)
	}
	return &Server{db: db, lis: lis, log: logger}, nil
}

type logDiscard struct{}

func (logDiscard) Write(p []byte) (int, error) { return len(p), nil }

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Serve accepts connections until Close. It blocks; run it in a goroutine.
func (s *Server) Serve() error {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

// ObservedPattern returns a copy of the update-pattern transcript the server
// has accumulated — the leakage DP-Sync bounds.
func (s *Server) ObservedPattern() leakage.Pattern {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := leakage.Pattern{Events: make([]leakage.Event, len(s.observed.Events))}
	copy(out.Events, s.observed.Events)
	return out
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // client hung up (io.EOF) or broke framing
		}
		req, err := wire.DecodeRequest(payload)
		var resp wire.Response
		if err != nil {
			resp = wire.Response{Error: err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		out, err := wire.Encode(resp)
		if err != nil {
			return
		}
		if err := wire.WriteFrame(conn, out); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req wire.Request) wire.Response {
	switch req.Type {
	case wire.MsgSetup, wire.MsgUpdate:
		cts := make([]seal.Sealed, len(req.Sealed))
		for i, b := range req.Sealed {
			cts[i] = seal.Sealed(b)
		}
		var err error
		if req.Type == wire.MsgSetup {
			err = s.db.SetupSealed(cts)
		} else {
			err = s.db.UpdateSealed(cts)
		}
		if err != nil {
			return wire.Response{Error: err.Error()}
		}
		s.observe(len(cts))
		return wire.Response{OK: true}

	case wire.MsgQuery:
		if req.Query == nil {
			return wire.Response{Error: "query missing"}
		}
		q := req.Query.ToQuery()
		ans, cost, err := s.db.Query(q)
		if err != nil {
			return wire.Response{Error: err.Error()}
		}
		return wire.Response{
			OK:     true,
			Answer: &wire.AnswerSpec{Scalar: ans.Scalar, Groups: ans.Groups},
			Cost: &wire.CostSpec{
				Seconds:        cost.Seconds,
				RecordsScanned: cost.RecordsScanned,
				PairsCompared:  cost.PairsCompared,
			},
		}

	case wire.MsgStats:
		st := s.db.Stats()
		return wire.Response{OK: true, Stats: &wire.StatsSpec{
			Records: st.Records, Bytes: st.Bytes, Updates: st.Updates,
		}}

	default:
		return wire.Response{Error: fmt.Sprintf("unknown message type %q", req.Type)}
	}
}

// observe appends the upload to the adversary-view transcript. The server
// has no tick source of its own, so it indexes events by update sequence —
// the volume sequence is the leakage that matters.
func (s *Server) observe(volume int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ticks++
	s.observed.Record(record.Tick(s.ticks), volume, false)
	s.log.Printf("observed update #%d: %d ciphertexts", s.ticks, volume)
}

// ErrServerClosed mirrors net/http's sentinel for tests.
var ErrServerClosed = errors.New("server: closed")
