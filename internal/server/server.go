// Package server hosts the cloud half of the three-party model as a real
// TCP service: it stores sealed ciphertexts, serves queries through the
// ObliDB enclave simulator, and — critically — observes exactly what the
// paper's adversary observes: update times and volumes. The server logs that
// transcript, making the update-pattern leakage a tangible artifact.
package server

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"sync"
	"time"

	"dpsync/internal/leakage"
	"dpsync/internal/oblidb"
	"dpsync/internal/record"
	"dpsync/internal/seal"
	"dpsync/internal/telemetry"
	"dpsync/internal/wire"
)

// Connection-hardening defaults. A handler goroutine must never be pinned
// forever by a stalled peer (half-open TCP connection, client that wrote a
// partial frame and died) or spammed into unbounded log growth by a
// malformed one.
const (
	// DefaultReadTimeout is the per-connection read deadline: a connection
	// that sends nothing (not even a keepalive request) for this long is
	// closed.
	DefaultReadTimeout = 2 * time.Minute
	// DefaultWriteTimeout is the per-connection write deadline: a peer that
	// stops reading (dead TCP window) cannot pin the handler in a blocked
	// write forever. This mirrors the gateway's binary-path hardening —
	// the JSON debug/compat path gets the same guarantee.
	DefaultWriteTimeout = 30 * time.Second
	// DefaultMaxFrameErrors is how many malformed frames a connection may
	// send before the server hangs up on it.
	DefaultMaxFrameErrors = 8
	// maxErrorLogs bounds per-connection error logging: the first few
	// malformed frames are logged, the rest only counted.
	maxErrorLogs = 3
)

// Option tunes connection handling.
type Option func(*Server)

// WithReadTimeout sets the per-connection read deadline; d <= 0 disables it
// (tests that hold idle connections open across long pauses).
func WithReadTimeout(d time.Duration) Option {
	return func(s *Server) { s.readTimeout = d }
}

// WithWriteTimeout sets the per-connection write deadline; d <= 0 disables
// it.
func WithWriteTimeout(d time.Duration) Option {
	return func(s *Server) { s.writeTimeout = d }
}

// WithMaxFrameErrors sets how many malformed frames a connection may send
// before being closed; n <= 0 restores the default.
func WithMaxFrameErrors(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxFrameErrs = n
		}
	}
}

// Server is a DP-Sync storage server backed by the ObliDB substrate.
type Server struct {
	db  *oblidb.DB
	lis net.Listener
	log *slog.Logger

	readTimeout  time.Duration
	writeTimeout time.Duration
	maxFrameErrs int

	mu       sync.Mutex
	observed leakage.Pattern // the adversary's view: (tick, volume) per upload
	ticks    int             // server-side logical clock: one tick per update
	closed   bool
	wg       sync.WaitGroup
}

// New creates a server holding the given 32-byte data key (standing in for
// enclave attestation/provisioning) and starts listening on addr
// (e.g. "127.0.0.1:7700"; port 0 picks a free port).
func New(addr string, key []byte, logger *slog.Logger, opts ...Option) (*Server, error) {
	db, err := oblidb.NewWithKey(key)
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	if logger == nil {
		logger = telemetry.Discard()
	}
	s := &Server{
		db: db, lis: lis, log: logger,
		readTimeout:  DefaultReadTimeout,
		writeTimeout: DefaultWriteTimeout,
		maxFrameErrs: DefaultMaxFrameErrors,
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Serve accepts connections until Close. It blocks; run it in a goroutine.
// Transient accept failures (fd exhaustion, aborted handshakes) are retried
// with backoff rather than tearing the server down.
func (s *Server) Serve() error {
	var delay time.Duration
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else if delay *= 2; delay > time.Second {
					delay = time.Second
				}
				s.log.Warn("accept failed; retrying", "err", err, "delay", delay)
				time.Sleep(delay)
				continue
			}
			return err
		}
		delay = 0
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

// ObservedPattern returns a copy of the update-pattern transcript the server
// has accumulated — the leakage DP-Sync bounds.
func (s *Server) ObservedPattern() leakage.Pattern {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := leakage.Pattern{Events: make([]leakage.Event, len(s.observed.Events))}
	copy(out.Events, s.observed.Events)
	return out
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	frameErrs, logged := 0, 0
	logf := func(format string, args ...any) {
		// Bounded error logging: a malformed or hostile peer must not be
		// able to grow the log without limit.
		if logged < maxErrorLogs {
			s.log.Warn(fmt.Sprintf(format, args...), "conn", conn.RemoteAddr().String())
			logged++
		}
	}
	for {
		if s.readTimeout > 0 {
			// Refreshed before every frame: the deadline bounds *idleness*,
			// not connection lifetime. A half-open peer (or one that wrote a
			// partial frame and stalled) trips it and frees this goroutine.
			_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				if errors.Is(err, os.ErrDeadlineExceeded) {
					logf("closing idle connection: no complete frame within %v", s.readTimeout)
				} else {
					logf("closing connection: %v", err)
				}
			}
			return
		}
		req, err := wire.DecodeRequest(payload)
		var resp wire.Response
		if err != nil {
			frameErrs++
			logf("malformed request (%d/%d): %v", frameErrs, s.maxFrameErrs, err)
			resp = wire.Response{Error: err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		out, err := wire.Encode(resp)
		if err != nil {
			return
		}
		if s.writeTimeout > 0 {
			// The write-stall deadline: a half-open peer or one with a full
			// receive buffer trips it and frees this goroutine instead of
			// pinning it in Write for the connection's lifetime.
			_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		if err := wire.WriteFrame(conn, out); err != nil {
			logf("closing connection: write: %v", err)
			return
		}
		if frameErrs >= s.maxFrameErrs {
			logf("closing connection after %d malformed frames", frameErrs)
			return
		}
	}
}

func (s *Server) dispatch(req wire.Request) wire.Response {
	switch req.Type {
	case wire.MsgSetup, wire.MsgUpdate:
		cts := make([]seal.Sealed, len(req.Sealed))
		for i, b := range req.Sealed {
			cts[i] = seal.Sealed(b)
		}
		var err error
		if req.Type == wire.MsgSetup {
			err = s.db.SetupSealed(cts)
		} else {
			err = s.db.UpdateSealed(cts)
		}
		if err != nil {
			return wire.Response{Error: err.Error()}
		}
		s.observe(len(cts))
		return wire.Response{OK: true}

	case wire.MsgQuery:
		if req.Query == nil {
			return wire.Response{Error: "query missing"}
		}
		q := req.Query.ToQuery()
		ans, cost, err := s.db.Query(q)
		if err != nil {
			return wire.Response{Error: err.Error()}
		}
		return wire.NewQueryResponse(ans, cost)

	case wire.MsgStats:
		return wire.NewStatsResponse(s.db.Stats(), "", 0)

	default:
		return wire.Response{Error: fmt.Sprintf("unknown message type %q", req.Type)}
	}
}

// observe appends the upload to the adversary-view transcript. The server
// has no tick source of its own, so it indexes events by update sequence —
// the volume sequence is the leakage that matters.
func (s *Server) observe(volume int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ticks++
	s.observed.Record(record.Tick(s.ticks), volume, false)
	s.log.Info("observed update", "tick", s.ticks, "ciphertexts", volume)
}

// ErrServerClosed mirrors net/http's sentinel for tests.
var ErrServerClosed = errors.New("server: closed")
