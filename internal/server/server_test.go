package server_test

import (
	"bytes"
	"errors"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"dpsync/internal/client"
	"dpsync/internal/core"
	"dpsync/internal/dp"
	"dpsync/internal/query"
	"dpsync/internal/record"
	"dpsync/internal/seal"
	"dpsync/internal/server"
	"dpsync/internal/strategy"
	"dpsync/internal/wire"
)

func startServer(t *testing.T) (*server.Server, []byte) {
	t.Helper()
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New("127.0.0.1:0", key, nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, key
}

func yellow(tick int, id uint16) record.Record {
	return record.Record{PickupTime: record.Tick(tick), PickupID: id, Provider: record.YellowCab}
}

func TestEndToEndOverTCP(t *testing.T) {
	srv, key := startServer(t)
	cl, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Setup([]record.Record{yellow(0, 60), yellow(0, 70)}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Update([]record.Record{yellow(1, 80), record.NewDummy(record.YellowCab)}); err != nil {
		t.Fatal(err)
	}
	ans, cost, err := cl.Query(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Scalar != 3 { // 60, 70, 80 in range; dummy excluded in enclave
		t.Errorf("Q1 = %v, want 3", ans.Scalar)
	}
	if cost.RecordsScanned != 4 {
		t.Errorf("scanned = %d, want full store", cost.RecordsScanned)
	}
}

func TestServerSeesOnlyVolumes(t *testing.T) {
	srv, key := startServer(t)
	cl, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Update([]record.Record{yellow(1, 1), record.NewDummy(record.YellowCab), record.NewDummy(record.YellowCab)}); err != nil {
		t.Fatal(err)
	}
	// Owner-side stats know the split; server-side stats cannot.
	own := cl.Stats()
	if own.DummyRecords != 2 || own.RealRecords != 1 {
		t.Errorf("owner stats = %+v", own)
	}
	remote, err := cl.RemoteStats()
	if err != nil {
		t.Fatal(err)
	}
	if remote.Records != 3 {
		t.Errorf("server records = %d", remote.Records)
	}
	pat := srv.ObservedPattern()
	if pat.Updates() != 2 || pat.Events[1].Volume != 3 {
		t.Errorf("observed pattern = %s", pat.String())
	}
}

func TestFullOwnerStackOverNetwork(t *testing.T) {
	srv, key := startServer(t)
	cl, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	strat, err := strategy.NewTimer(strategy.TimerConfig{
		Epsilon: 1, Period: 10, Source: dp.NewSeededSource(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := core.New(core.Config{Strategy: strat, Database: cl})
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Setup(nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		var terr error
		if i%2 == 0 {
			terr = owner.Tick(yellow(i, 55))
		} else {
			terr = owner.Tick()
		}
		if terr != nil {
			t.Fatal(terr)
		}
	}
	qe, _, err := owner.QueryError(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	// ObliDB answers exactly; error = records still cached.
	if qe != float64(owner.LogicalGap()) {
		t.Errorf("error %v != gap %d", qe, owner.LogicalGap())
	}
	// The server's observed event count matches the owner's transcript
	// (plus nothing: every pattern event crossed the wire).
	if got, want := srv.ObservedPattern().Updates(), owner.Pattern().Updates(); got != want {
		t.Errorf("server saw %d updates, owner posted %d", got, want)
	}
}

func TestWrongKeyRejectedByEnclave(t *testing.T) {
	srv, _ := startServer(t)
	otherKey, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(srv.Addr(), otherKey)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// The enclave authenticates ciphertexts as they enter its resident
	// tables; blobs sealed under the wrong key are rejected at upload.
	if err := cl.Setup([]record.Record{yellow(0, 60)}); err == nil {
		t.Error("enclave admitted ciphertexts sealed under the wrong key")
	}
}

func TestServerErrorPropagation(t *testing.T) {
	srv, key := startServer(t)
	cl, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Update before setup must surface the edb error through the wire.
	err = cl.Update([]record.Record{yellow(1, 1)})
	if err == nil || !strings.Contains(err.Error(), "not set up") {
		t.Errorf("error = %v, want not-set-up", err)
	}
	if err := cl.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Setup(nil); err == nil {
		t.Error("double setup accepted")
	}
}

func TestMultipleClients(t *testing.T) {
	srv, key := startServer(t)
	owner1, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer owner1.Close()
	owner2, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer owner2.Close()

	if err := owner1.Setup([]record.Record{yellow(0, 60)}); err != nil {
		t.Fatal(err)
	}
	green := record.Record{PickupTime: 0, PickupID: 5, Provider: record.GreenTaxi}
	if err := owner2.Update([]record.Record{green}); err != nil {
		t.Fatal(err)
	}
	// Analyst on a third connection.
	analyst, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer analyst.Close()
	ans, _, err := analyst.Query(query.Q2())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Total() != 1 { // one yellow record
		t.Errorf("Q2 total = %v", ans.Total())
	}
}

// TestHalfOpenConnectionReleasesHandler pins the read-deadline fix: a client
// that writes a partial frame header and then stalls must not pin a handler
// goroutine forever. Before the fix, ReadFrame blocked indefinitely and
// srv.Close hung in wg.Wait.
func TestHalfOpenConnectionReleasesHandler(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New("127.0.0.1:0", key, nil, server.WithReadTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Two bytes of a four-byte frame header, then silence: a half-open
	// client from the server's perspective.
	if _, err := conn.Write([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	// The server must hang up on its own; the read on our side observes it.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a half frame")
	} else if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("server did not close the half-open connection within its read deadline")
	}

	// And Close must complete without waiting on a pinned handler.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung: handler goroutine still pinned")
	}
}

// TestMalformedFrameFloodClosesConnection pins the bounded-error handling: a
// client spewing garbage gets per-frame error responses up to the bound,
// then the server hangs up instead of serving it forever.
func TestMalformedFrameFloodClosesConnection(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New("127.0.0.1:0", key, nil, server.WithMaxFrameErrors(3))
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		if err := wire.WriteFrame(conn, []byte("{garbage")); err != nil {
			t.Fatal(err)
		}
		raw, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		resp, err := wire.DecodeResponse(raw)
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK || resp.Error == "" {
			t.Fatalf("frame %d: expected error response, got %+v", i, resp)
		}
	}
	// The bound is reached: the connection must now be closed server-side.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("connection still serving after malformed-frame bound")
	} else if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("server kept the flooding connection open")
	}
	// Zero-length frames count as malformed too (wire.ErrBadFrame), and the
	// server stays up for legitimate clients throughout.
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.WriteFrame(conn2, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := wire.ReadFrame(conn2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "empty request frame") {
		t.Errorf("zero-length frame: got %+v, want empty-request error", resp)
	}
	cl, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Setup(nil); err != nil {
		t.Fatal(err)
	}
}

// TestWriteStallFreesHandler pins the JSON path's write-deadline hardening:
// a client that sends requests but never reads responses eventually stalls
// the server's write; the write deadline must free the handler so Close does
// not hang behind the dead peer. (The gateway's binary path got this in its
// original hardening pass — this is the compat path's regression test.)
func TestWriteStallFreesHandler(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New("127.0.0.1:0", key, nil, server.WithWriteTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		// Shrink our buffers so the pipeline fills in kilobytes, not
		// megabytes of autotuned window.
		_ = tc.SetReadBuffer(2048)
		_ = tc.SetWriteBuffer(2048)
	}
	req, err := wire.Encode(wire.Request{Type: wire.MsgStats})
	if err != nil {
		t.Fatal(err)
	}
	var one bytes.Buffer
	if err := wire.WriteFrame(&one, req); err != nil {
		t.Fatal(err)
	}
	batch := bytes.Repeat(one.Bytes(), 256)
	// Never read a single response: the server's writes back up through our
	// receive window until its WriteFrame blocks, then our own sends stop
	// draining. Our write deadline detects that stall.
	stalled := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		_ = conn.SetWriteDeadline(time.Now().Add(500 * time.Millisecond))
		if _, err := conn.Write(batch); err != nil {
			stalled = true
			break
		}
	}
	if !stalled {
		t.Fatal("could not stall the server's writes; test environment buffers too large")
	}
	// The server's write deadline must now fire and free the handler, so a
	// graceful Close completes instead of waiting on the pinned goroutine.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung: handler still pinned in a stalled write")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:1", make([]byte, 32)); err == nil {
		t.Error("dial to dead port succeeded")
	}
	if _, err := client.Dial("127.0.0.1:0", []byte("short")); err == nil {
		t.Error("bad key accepted")
	}
}
