package server_test

import (
	"strings"
	"testing"

	"dpsync/internal/client"
	"dpsync/internal/core"
	"dpsync/internal/dp"
	"dpsync/internal/query"
	"dpsync/internal/record"
	"dpsync/internal/seal"
	"dpsync/internal/server"
	"dpsync/internal/strategy"
)

func startServer(t *testing.T) (*server.Server, []byte) {
	t.Helper()
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New("127.0.0.1:0", key, nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, key
}

func yellow(tick int, id uint16) record.Record {
	return record.Record{PickupTime: record.Tick(tick), PickupID: id, Provider: record.YellowCab}
}

func TestEndToEndOverTCP(t *testing.T) {
	srv, key := startServer(t)
	cl, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Setup([]record.Record{yellow(0, 60), yellow(0, 70)}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Update([]record.Record{yellow(1, 80), record.NewDummy(record.YellowCab)}); err != nil {
		t.Fatal(err)
	}
	ans, cost, err := cl.Query(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Scalar != 3 { // 60, 70, 80 in range; dummy excluded in enclave
		t.Errorf("Q1 = %v, want 3", ans.Scalar)
	}
	if cost.RecordsScanned != 4 {
		t.Errorf("scanned = %d, want full store", cost.RecordsScanned)
	}
}

func TestServerSeesOnlyVolumes(t *testing.T) {
	srv, key := startServer(t)
	cl, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Update([]record.Record{yellow(1, 1), record.NewDummy(record.YellowCab), record.NewDummy(record.YellowCab)}); err != nil {
		t.Fatal(err)
	}
	// Owner-side stats know the split; server-side stats cannot.
	own := cl.Stats()
	if own.DummyRecords != 2 || own.RealRecords != 1 {
		t.Errorf("owner stats = %+v", own)
	}
	remote, err := cl.RemoteStats()
	if err != nil {
		t.Fatal(err)
	}
	if remote.Records != 3 {
		t.Errorf("server records = %d", remote.Records)
	}
	pat := srv.ObservedPattern()
	if pat.Updates() != 2 || pat.Events[1].Volume != 3 {
		t.Errorf("observed pattern = %s", pat.String())
	}
}

func TestFullOwnerStackOverNetwork(t *testing.T) {
	srv, key := startServer(t)
	cl, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	strat, err := strategy.NewTimer(strategy.TimerConfig{
		Epsilon: 1, Period: 10, Source: dp.NewSeededSource(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := core.New(core.Config{Strategy: strat, Database: cl})
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Setup(nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		var terr error
		if i%2 == 0 {
			terr = owner.Tick(yellow(i, 55))
		} else {
			terr = owner.Tick()
		}
		if terr != nil {
			t.Fatal(terr)
		}
	}
	qe, _, err := owner.QueryError(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	// ObliDB answers exactly; error = records still cached.
	if qe != float64(owner.LogicalGap()) {
		t.Errorf("error %v != gap %d", qe, owner.LogicalGap())
	}
	// The server's observed event count matches the owner's transcript
	// (plus nothing: every pattern event crossed the wire).
	if got, want := srv.ObservedPattern().Updates(), owner.Pattern().Updates(); got != want {
		t.Errorf("server saw %d updates, owner posted %d", got, want)
	}
}

func TestWrongKeyRejectedByEnclave(t *testing.T) {
	srv, _ := startServer(t)
	otherKey, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(srv.Addr(), otherKey)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// The enclave authenticates ciphertexts as they enter its resident
	// tables; blobs sealed under the wrong key are rejected at upload.
	if err := cl.Setup([]record.Record{yellow(0, 60)}); err == nil {
		t.Error("enclave admitted ciphertexts sealed under the wrong key")
	}
}

func TestServerErrorPropagation(t *testing.T) {
	srv, key := startServer(t)
	cl, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Update before setup must surface the edb error through the wire.
	err = cl.Update([]record.Record{yellow(1, 1)})
	if err == nil || !strings.Contains(err.Error(), "not set up") {
		t.Errorf("error = %v, want not-set-up", err)
	}
	if err := cl.Setup(nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Setup(nil); err == nil {
		t.Error("double setup accepted")
	}
}

func TestMultipleClients(t *testing.T) {
	srv, key := startServer(t)
	owner1, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer owner1.Close()
	owner2, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer owner2.Close()

	if err := owner1.Setup([]record.Record{yellow(0, 60)}); err != nil {
		t.Fatal(err)
	}
	green := record.Record{PickupTime: 0, PickupID: 5, Provider: record.GreenTaxi}
	if err := owner2.Update([]record.Record{green}); err != nil {
		t.Fatal(err)
	}
	// Analyst on a third connection.
	analyst, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer analyst.Close()
	ans, _, err := analyst.Query(query.Q2())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Total() != 1 { // one yellow record
		t.Errorf("Q2 total = %v", ans.Total())
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:1", make([]byte, 32)); err == nil {
		t.Error("dial to dead port succeeded")
	}
	if _, err := client.Dial("127.0.0.1:0", []byte("short")); err == nil {
		t.Error("bad key accepted")
	}
}
