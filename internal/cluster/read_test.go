package cluster_test

import (
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dpsync/internal/client"
	"dpsync/internal/cluster"
	"dpsync/internal/edb"
	"dpsync/internal/query"
	"dpsync/internal/record"
	"dpsync/internal/seal"
	"dpsync/internal/server"
	"dpsync/internal/wire"
)

// readFingerprint renders a query result to an exact byte string — IEEE
// bits of the answer plus the deterministic cost counters. Cost.Seconds is
// wall-clock and excluded (the one field two evaluations may disagree on).
func readFingerprint(ans query.Answer, cost edb.Cost) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%016x", math.Float64bits(ans.Scalar))
	for _, g := range ans.Groups {
		fmt.Fprintf(&sb, ",%016x", math.Float64bits(g))
	}
	fmt.Fprintf(&sb, "|scan=%d|pairs=%d", cost.RecordsScanned, cost.PairsCompared)
	return sb.String()
}

// replGate pauses a follower's replication stream on demand: while paused,
// every gated connection's Read blocks before touching the socket, so the
// follower's applied cursor freezes at a known offset — a deterministic
// network partition the test can open and heal.
type replGate struct {
	mu     sync.Mutex
	paused chan struct{}
}

func (g *replGate) pause() {
	g.mu.Lock()
	if g.paused == nil {
		g.paused = make(chan struct{})
	}
	g.mu.Unlock()
}

func (g *replGate) resume() {
	g.mu.Lock()
	if g.paused != nil {
		close(g.paused)
		g.paused = nil
	}
	g.mu.Unlock()
}

func (g *replGate) wait() {
	g.mu.Lock()
	ch := g.paused
	g.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

type gatedConn struct {
	net.Conn
	g *replGate
}

func (c *gatedConn) Read(p []byte) (int, error) {
	c.g.wait()
	return c.Conn.Read(p)
}

// dialReadPlane opens a raw read-only connection to a node: the "DPSQ"
// hello, codec negotiated. The raw wire view is what lets the test assert
// the typed staleness refusal itself, beneath the client's fallback.
func dialReadPlane(t *testing.T, addr string) (net.Conn, wire.Codec) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := wire.WriteReadHello(conn, wire.CodecBinary); err != nil {
		t.Fatal(err)
	}
	codec, err := wire.ReadHelloAck(conn)
	if err != nil {
		t.Fatalf("read hello refused: %v", err)
	}
	return conn, codec
}

func rawRoundTrip(t *testing.T, conn net.Conn, codec wire.Codec, id uint64, owner string, req wire.Request) wire.Response {
	t.Helper()
	payload, err := codec.EncodeGatewayRequest(wire.GatewayRequest{ID: id, Owner: owner, Req: req})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, payload); err != nil {
		t.Fatal(err)
	}
	raw, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	gresp, err := codec.DecodeGatewayResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if gresp.ID != id {
		t.Fatalf("response id %d, want %d", gresp.ID, id)
	}
	return gresp.Resp
}

// TestReadPlaneDifferential is the follower read plane's correctness pin:
//
//   - every answer the follower serves is computed from committed replicated
//     state only, bit-identical to the primary's answer and to a
//     single-owner reference EDB fed the same batches;
//   - a freshness demand the replica's cursor cannot meet gets the typed
//     wire.ErrStale carrying that cursor — never a silently stale answer —
//     and the client falls back to the trivially-fresh primary;
//   - across a replication partition the frozen replica keeps serving its
//     committed prefix byte-for-byte, refuses fresher bounds, and converges
//     to the primary once the partition heals.
func TestReadPlaneDifferential(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	lease := cluster.NewMemLease(nil)
	gate := &replGate{}
	gatedDialer := func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return &gatedConn{Conn: c, g: gate}, nil
	}
	a := startNode(t, "node-ra", lease, key, failoverTTL, nil)
	b := startNode(t, "node-rb", lease, key, failoverTTL, gatedDialer)
	if a.Role() != cluster.RolePrimary || b.Role() != cluster.RoleFollower {
		t.Fatalf("roles: a=%v b=%v", a.Role(), b.Role())
	}
	deadline := time.Now().Add(10 * time.Second)
	for a.Stats().Hub.Followers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never connected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	const owner = "owner-read"
	wconn, err := client.DialGateway(a.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer wconn.Close()
	wOwn := wconn.Owner(owner)
	// Read-routed connection: syncs to the primary, queries to the follower,
	// fallback to the primary on any refusal.
	rconn, err := client.DialGateway(a.Addr(), key, client.WithReadReplica(b.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer rconn.Close()
	rOwn := rconn.Owner(owner)

	// Deterministic trace; every update lands in Q1's 50–100 range so the
	// range count distinguishes each committed prefix.
	setup := []record.Record{yellow(0, 60), yellow(0, 70)}
	update := func(i int) []record.Record { return []record.Record{yellow(i, uint16(50 + i))} }
	if err := wOwn.Setup(setup); err != nil {
		t.Fatal(err)
	}
	const updates = 9
	for i := 1; i <= updates; i++ {
		if err := wOwn.Update(update(i)); err != nil {
			t.Fatal(err)
		}
	}
	const cursor = updates + 1 // one owner, one shard stream: setup + updates
	for b.Stats().Follower.Applied < cursor {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %+v", b.Stats().Follower)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Single-owner reference: the same batches through the paper's
	// single-owner server stack.
	srv, err := server.New("127.0.0.1:0", key, nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })
	ref, err := client.Dial(srv.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.Setup(setup); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= updates; i++ {
		if err := ref.Update(update(i)); err != nil {
			t.Fatal(err)
		}
	}

	kinds := []query.Query{query.Q1(), query.Q2(), query.Q3(), query.Q4()}
	replicaAt := map[query.Kind]string{} // follower fingerprints at the frozen cursor, reused after the partition
	for _, q := range kinds {
		rAns, rCost, err := rOwn.Query(q)
		if err != nil {
			t.Fatalf("%v via replica: %v", q.Kind, err)
		}
		pAns, pCost, err := wOwn.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		sAns, sCost, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got := readFingerprint(rAns, rCost)
		if want := readFingerprint(pAns, pCost); got != want {
			t.Fatalf("%v: replica diverged from primary:\n got: %s\nwant: %s", q.Kind, got, want)
		}
		if want := readFingerprint(sAns, sCost); got != want {
			t.Fatalf("%v: replica diverged from single-owner reference:\n got: %s\nwant: %s", q.Kind, got, want)
		}
		replicaAt[q.Kind] = got
	}
	served, stale, fallbacks := rconn.ReplicaStats()
	if served != int64(len(kinds)) || stale != 0 || fallbacks != 0 {
		t.Fatalf("replica stats = served %d stale %d fallbacks %d; every query must have been follower-served", served, stale, fallbacks)
	}

	// Freshness bounds. A demand the cursor meets is served; a demand beyond
	// it gets the typed refusal carrying the cursor on the raw wire — never
	// an answer computed from less history than asked.
	if _, _, err := rOwn.QueryAt(query.Q1(), cursor); err != nil {
		t.Fatalf("QueryAt(cursor) must be served: %v", err)
	}
	raw, codec := dialReadPlane(t, b.Addr())
	resp := rawRoundTrip(t, raw, codec, 1, owner, wire.Request{
		Type: wire.MsgQuery, Query: specPtr(query.Q1()), MinOffset: cursor + 5,
	})
	if resp.OK || resp.Error != wire.ErrStale.Error() {
		t.Fatalf("fresher-than-cursor demand answered: %+v", resp)
	}
	if resp.Stale == nil || resp.Stale.Offset != cursor {
		t.Fatalf("stale refusal carries %+v, want cursor %d", resp.Stale, cursor)
	}
	// The same demand through the client falls back to the primary, which is
	// trivially fresh — the caller still gets a correct answer.
	if _, _, err := rOwn.QueryAt(query.Q1(), cursor+5); err != nil {
		t.Fatalf("client freshness fallback: %v", err)
	}
	if _, stale2, fb2 := rconn.ReplicaStats(); stale2 != 1 || fb2 != 1 {
		t.Fatalf("after freshness fallback: stale %d fallbacks %d, want 1/1", stale2, fb2)
	}
	// Writes on a read-only connection are refused with the typed
	// not-primary error, on the follower and on the primary alike.
	wresp := rawRoundTrip(t, raw, codec, 2, owner, wire.Request{Type: wire.MsgResume})
	if wresp.OK || wresp.Error != wire.ErrNotPrimary.Error() {
		t.Fatalf("resume on read plane = %+v, want typed not-primary refusal", wresp)
	}
	praw, pcodec := dialReadPlane(t, a.Addr())
	presp := rawRoundTrip(t, praw, pcodec, 3, owner, wire.Request{Type: wire.MsgResume})
	if presp.OK || presp.Error != wire.ErrNotPrimary.Error() {
		t.Fatalf("resume on primary read conn = %+v, want typed not-primary refusal", presp)
	}

	// Partition: freeze replication, advance the primary. The frozen replica
	// keeps serving its committed prefix — byte-identical to what it served
	// before the partition — and keeps refusing fresher bounds with its
	// unchanged cursor. It must never leak the primary's newer state.
	gate.pause()
	const extra = 3
	for i := updates + 1; i <= updates+extra; i++ {
		if err := wOwn.Update(update(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range kinds {
		rAns, rCost, err := rOwn.Query(q)
		if err != nil {
			t.Fatalf("%v via partitioned replica: %v", q.Kind, err)
		}
		if got := readFingerprint(rAns, rCost); got != replicaAt[q.Kind] {
			t.Fatalf("%v: partitioned replica diverged from its own committed prefix:\n got: %s\nwant: %s", q.Kind, got, replicaAt[q.Kind])
		}
	}
	pAns, pCost, err := wOwn.Query(query.Q1())
	if err != nil {
		t.Fatal(err)
	}
	fresh := readFingerprint(pAns, pCost)
	if fresh == replicaAt[query.RangeCount] {
		t.Fatal("primary's advanced Q1 equals the frozen replica's — the partition test is vacuous")
	}
	sresp := rawRoundTrip(t, raw, codec, 4, owner, wire.Request{
		Type: wire.MsgQuery, Query: specPtr(query.Q1()), MinOffset: cursor + extra,
	})
	if sresp.OK || sresp.Error != wire.ErrStale.Error() || sresp.Stale == nil || sresp.Stale.Offset != cursor {
		t.Fatalf("partitioned stale refusal = %+v, want cursor %d", sresp, cursor)
	}
	// Through the client, the same bound lands on the primary and observes
	// the advanced state.
	fAns, fCost, err := rOwn.QueryAt(query.Q1(), cursor+extra)
	if err != nil {
		t.Fatal(err)
	}
	if got := readFingerprint(fAns, fCost); got != fresh {
		t.Fatalf("freshness fallback answer:\n got: %s\nwant: %s", got, fresh)
	}

	// Heal. The replica catches up and converges: the same query, now served
	// by the follower at the advanced cursor, matches the primary's bytes.
	gate.resume()
	for b.Stats().Follower.Applied < cursor+extra {
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: %+v", b.Stats().Follower)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cAns, cCost, err := rOwn.QueryAt(query.Q1(), cursor+extra)
	if err != nil {
		t.Fatal(err)
	}
	if got := readFingerprint(cAns, cCost); got != fresh {
		t.Fatalf("healed replica diverged from primary:\n got: %s\nwant: %s", got, fresh)
	}
	if rp := b.Stats().ReadPlane; rp.Queries == 0 || rp.Stale == 0 {
		t.Fatalf("read-plane counters unmoved: %+v", rp)
	}
}

func specPtr(q query.Query) *wire.QuerySpec {
	spec := wire.FromQuery(q)
	return &spec
}
