package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dpsync/internal/dp"
	"dpsync/internal/leakage"
	"dpsync/internal/store"
	"dpsync/internal/telemetry"
	"dpsync/internal/wire"
)

// The follower's half of replication. A follower is not a serving gateway:
// it owns its own store.Store under its own directory and folds the
// primary's shipped WAL entries through the exact rules recovery uses —
// tick ≤ clock is skipped, tick == clock+1 is applied (transcript event,
// ε charge, history tail) and appended to the follower's own WAL, anything
// else is a stream gap. Because the fold and the append are recovery's own
// semantics, the follower's directory is at every instant a valid restart
// image: promotion is nothing more than sealing it and running gateway.New
// over it.
//
// Stream positions: counts[sid] is the shard's applied live-stream offset
// (== the shard's committed entry count, re-derivable from recovered
// clocks, which is what makes resume-after-restart exact). Snapshot
// transfers deliver bootstrap entries with offset 0 — folded by tick only —
// and reposition the cursor at the transfer's basis.

// errStreamGap reports a replication stream that cannot extend this
// follower's state contiguously; the tail loop drops the link and rejoins
// asking for a snapshot transfer on the damaged shard.
var errStreamGap = errors.New("cluster: replication stream gap")

// errShardMismatch reports a primary whose shard count differs from this
// node's — a misconfigured cluster, fatal (shard hashing would scatter
// owners differently on each node).
var errShardMismatch = errors.New("cluster: primary shard count differs from local configuration")

// resyncCursor is the join cursor a follower sends for a shard whose
// stream it can no longer extend (tick gap, corrupt frame): it is above any
// real head, so the primary's servability check always answers with a
// snapshot transfer.
const resyncCursor = ^uint64(0)

// FollowerStats are the follower-side replication counters.
type FollowerStats struct {
	// Applied counts live stream entries folded and WAL-appended.
	Applied uint64
	// Snapshots counts per-shard snapshot transfers applied.
	Snapshots uint64
	// LagNs is the cumulative (apply time − primary commit time) over
	// Applied entries, in nanoseconds; divide for the mean replication lag.
	LagNs int64
}

// followerCore is the replica state machine. All stream methods run on one
// goroutine (the tail loop); Stats and the WAL-append completions touch
// only the mutex-guarded fields. The read plane observes owner state
// through cut, which synchronizes with the tail loop via smu.
type followerCore struct {
	log       *slog.Logger
	st        *store.Store
	shards    int
	window    int
	snapEvery int
	// tracer records follower-apply fragments for traces the primary
	// propagated over the traced codec; nil disables (spans are dropped,
	// frames apply identically).
	tracer *telemetry.Tracer

	// lastContact is the UnixNano of the last frame read off the primary
	// (heartbeats included); 0 before the first session. Readiness reads it
	// lock-free — a follower replicating within its lag bound is ready.
	lastContact atomic.Int64

	// smu orders the tail loop's state mutations against read-plane cuts:
	// applyFrame holds it across each non-heartbeat frame, so a cut sees
	// owner state and stream cursor from the same frame boundary. WAL-append
	// completions take only mu, so holding smu across rotate's quiesce
	// cannot deadlock.
	smu       sync.Mutex
	states    []map[string]*store.OwnerState // per shard, per owner
	counts    []uint64                       // applied live-stream offsets
	resync    []bool                         // shard needs a snapshot transfer
	inSnap    []bool                         // mid snapshot transfer
	snapBasis []uint64
	sinceSnap []int            // WAL appends since last rotation
	pending   []sync.WaitGroup // in-flight WAL appends per shard

	mu        sync.Mutex
	appendErr error
	stats     FollowerStats
}

// openFollower opens (or resumes) a replica image at dir. Whatever a prior
// process left there — primary or follower alike — is recovered through the
// standard store recovery, and each shard's stream cursor is re-derived
// from its owners' committed clocks.
func openFollower(dir string, shards, window, snapEvery int, fsync bool, lg *slog.Logger, tracer *telemetry.Tracer) (*followerCore, error) {
	st, states, err := store.Open(store.Options{Dir: dir, Shards: shards, Fsync: fsync, HistoryWindow: window})
	if err != nil {
		return nil, fmt.Errorf("cluster: opening replica store: %w", err)
	}
	f := &followerCore{
		log: lg, st: st, shards: shards, window: window, snapEvery: snapEvery, tracer: tracer,
		states:    make([]map[string]*store.OwnerState, shards),
		counts:    make([]uint64, shards),
		resync:    make([]bool, shards),
		inSnap:    make([]bool, shards),
		snapBasis: make([]uint64, shards),
		sinceSnap: make([]int, shards),
		pending:   make([]sync.WaitGroup, shards),
	}
	for sid := range f.states {
		f.states[sid] = map[string]*store.OwnerState{}
	}
	for owner, os := range states {
		sid := store.ShardFor(owner, shards)
		f.states[sid][owner] = os
		f.counts[sid] += os.Clock
	}
	return f, nil
}

// tail runs one replication session: handshake, join from the durable
// cursors, then apply frames until the link dies or the stream gaps. The
// returned error says why the session ended; wire.ErrNotPrimary and
// errShardMismatch are typed for the caller. readTO bounds silence on the
// link (the primary heartbeats when idle, so a quiet link is a dead one).
func (f *followerCore) tail(conn net.Conn, node string, readTO time.Duration) error {
	deadline := time.Now().Add(replHandshakeTimeout)
	_ = conn.SetDeadline(deadline)
	if err := wire.WriteReplHello(conn, wire.ReplVersion); err != nil {
		return err
	}
	if _, err := wire.ReadReplHelloAck(conn); err != nil {
		return err // wire.ErrNotPrimary passes through typed
	}
	cursors := make([]wire.ReplCursor, f.shards)
	f.smu.Lock()
	for sid := range cursors {
		off := f.counts[sid]
		if f.resync[sid] {
			off = resyncCursor
		}
		cursors[sid] = wire.ReplCursor{Shard: uint32(sid), Offset: off}
	}
	f.smu.Unlock()
	jb, err := wire.EncodeReplJoin(wire.ReplJoin{Node: node, Cursors: cursors})
	if err != nil {
		return err
	}
	if err := wire.WriteFrame(conn, jb); err != nil {
		return err
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	ack, err := wire.DecodeReplJoinAck(payload)
	if err != nil {
		return err
	}
	if int(ack.Shards) != f.shards {
		return fmt.Errorf("%w: primary has %d, this node %d", errShardMismatch, ack.Shards, f.shards)
	}
	_ = conn.SetWriteDeadline(time.Time{})
	// A dropped link mid-transfer leaves inSnap set; the rejoin restarts the
	// transfer from scratch, so clear the per-session markers.
	for sid := range f.inSnap {
		f.inSnap[sid] = false
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(readTO))
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return err
		}
		fr, err := wire.DecodeReplFrame(payload)
		if err != nil {
			return fmt.Errorf("cluster: malformed stream frame: %w", err)
		}
		now := time.Now()
		f.lastContact.Store(now.UnixNano())
		if err := f.applyFrame(fr, now); err != nil {
			return err
		}
	}
}

// applyFrame advances the replica by one stream frame. Offsets order the
// transport (skip ≤ cursor, apply cursor+1, gap otherwise); ticks order the
// content — the same split that lets a snapshot transfer heal a cursor from
// another primary's stream without ever double-applying a batch.
func (f *followerCore) applyFrame(fr wire.ReplFrame, now time.Time) error {
	if fr.Kind == wire.ReplHeartbeat {
		return nil
	}
	// One frame is the unit of atomicity the read plane observes: cut waits
	// out an in-progress fold, never sees a half-applied batch.
	f.smu.Lock()
	defer f.smu.Unlock()
	sid := int(fr.Shard)
	if sid < 0 || sid >= f.shards {
		return fmt.Errorf("cluster: stream frame for shard %d of %d", fr.Shard, f.shards)
	}
	switch fr.Kind {
	case wire.ReplSnapBegin:
		f.inSnap[sid], f.snapBasis[sid] = true, fr.Offset
		return nil
	case wire.ReplSnapEnd:
		if !f.inSnap[sid] {
			return fmt.Errorf("cluster: snapshot end without begin on shard %d", sid)
		}
		f.inSnap[sid] = false
		f.counts[sid] = f.snapBasis[sid]
		f.resync[sid] = false
		f.mu.Lock()
		f.stats.Snapshots++
		f.mu.Unlock()
		return nil
	case wire.ReplEntry, wire.ReplEntryTraced:
		if fr.Offset == 0 {
			if !f.inSnap[sid] {
				return fmt.Errorf("cluster: bootstrap entry outside snapshot transfer on shard %d", sid)
			}
			return f.fold(sid, fr, false, now)
		}
		if fr.Offset <= f.counts[sid] {
			return nil // duplicate of our applied prefix
		}
		if fr.Offset != f.counts[sid]+1 {
			f.resync[sid] = true
			return fmt.Errorf("%w: shard %d got offset %d, expected %d", errStreamGap, sid, fr.Offset, f.counts[sid]+1)
		}
		if err := f.fold(sid, fr, true, now); err != nil {
			return err
		}
		f.counts[sid]++
		return nil
	}
	return fmt.Errorf("cluster: unknown stream frame kind %d", fr.Kind)
}

// fold lands one shipped entry: verify its frame (CRC), fold its batch into
// the owner's state by the recovery rule, append it to the replica's own
// WAL, and keep the replica's RAM bounded exactly as a live gateway would
// (history spill past the window, log rotation on cadence).
func (f *followerCore) fold(sid int, fr wire.ReplFrame, live bool, now time.Time) error {
	e, err := store.DecodeEntryFrame(fr.Entry)
	if err != nil {
		f.resync[sid] = true
		return fmt.Errorf("cluster: shard %d: corrupt shipped entry: %w", sid, err)
	}
	st := f.states[sid][e.Owner]
	if st == nil {
		st = &store.OwnerState{Owner: e.Owner, Budget: dp.NewBudget()}
		f.states[sid][e.Owner] = st
	}
	tick := e.Batch.Tick
	if tick <= st.Clock {
		return nil // content already in the replica (offset streams overlap after healing)
	}
	if tick != st.Clock+1 {
		f.resync[sid] = true
		return fmt.Errorf("%w: owner %q tick %d does not extend clock %d", errStreamGap, e.Owner, tick, st.Clock)
	}
	if err := st.Apply(e.Batch); err != nil {
		f.resync[sid] = true
		return fmt.Errorf("cluster: folding owner %q tick %d: %w", e.Owner, tick, err)
	}
	f.pending[sid].Add(1)
	if err := f.st.Append(sid, e, func(werr error) {
		if werr != nil {
			f.mu.Lock()
			if f.appendErr == nil {
				f.appendErr = werr
			}
			f.mu.Unlock()
		}
		f.pending[sid].Done()
	}); err != nil {
		f.pending[sid].Done()
		return fmt.Errorf("cluster: replica WAL append: %w", err)
	}
	f.spill(sid, st)
	f.sinceSnap[sid]++
	if f.sinceSnap[sid] >= f.snapEvery {
		f.rotate(sid)
	}
	f.mu.Lock()
	f.stats.Applied++
	if live {
		f.stats.LagNs += now.UnixNano() - fr.CommitNs
	}
	f.mu.Unlock()
	if fr.Kind == wire.ReplEntryTraced {
		// The primary sampled this sync: join its trace with a fragment whose
		// span parents under the propagated repl-ship span ID. The fragment
		// carries stage timing only — the wire context is trace ID + parent
		// span, never tenant identity.
		f.tracer.Fragment(fr.TraceID, fr.ParentSpan, "follower-apply", now, time.Now())
	}
	return nil
}

// spill mirrors the gateway's history-window enforcement on the replica:
// past 2× the window, everything but the last window batches moves to the
// shard's history segment, coalescing into the owner's previous ref where
// the store allows. A spill failure is survivable — batches stay in RAM and
// the next fold retries.
func (f *followerCore) spill(sid int, st *store.OwnerState) {
	w := f.window
	if w <= 0 || len(st.Tail) < 2*w {
		return
	}
	n := len(st.Tail) - w
	var prev *store.SegmentRef
	prevCount := 0
	if len(st.Spilled) > 0 {
		prev = &st.Spilled[len(st.Spilled)-1]
		prevCount = int(prev.Count)
	}
	refs, extended, err := f.st.Spill(sid, st.Owner, prev, st.Tail[:n])
	if len(refs) > 0 {
		done := 0
		for _, r := range refs {
			done += int(r.Count)
		}
		if extended {
			done -= prevCount
			st.Spilled[len(st.Spilled)-1] = refs[0]
			refs = refs[1:]
		}
		st.Spilled = append(st.Spilled, refs...)
		kept := make([]store.Batch, len(st.Tail)-done)
		copy(kept, st.Tail[done:])
		st.Tail = kept
	}
	if err != nil {
		f.log.Warn("replica history spill deferred; batches stay in RAM",
			"owner_hash", telemetry.OwnerHash(st.Owner), "batches", len(st.Tail), "err", err)
	}
}

// rotate snapshots one shard of the replica and truncates its WAL, after
// draining that shard's in-flight appends (the quiesce the store requires).
// A failed rotation only means a longer WAL; everything stays recoverable.
func (f *followerCore) rotate(sid int) {
	f.pending[sid].Wait()
	f.mu.Lock()
	werr := f.appendErr
	f.mu.Unlock()
	if werr != nil {
		return // the tail loop will surface the append failure
	}
	owners := make([]store.OwnerState, 0, len(f.states[sid]))
	for _, st := range f.states[sid] {
		owners = append(owners, *st)
	}
	if err := f.st.Rotate(sid, owners); err != nil {
		f.log.Warn("replica rotation failed", "shard", sid, "err", err)
		f.sinceSnap[sid] = f.snapEvery / 2 // retry soon, not instantly
		return
	}
	f.sinceSnap[sid] = 0
}

// seal quiesces the replica and closes its store, leaving the directory a
// committed restart image — the promotion (and graceful shutdown) barrier.
// It reports a latched WAL append failure, if any; even then the directory
// holds the longest provable prefix.
func (f *followerCore) seal() error {
	for sid := range f.pending {
		f.pending[sid].Wait()
	}
	f.mu.Lock()
	werr := f.appendErr
	f.mu.Unlock()
	if cerr := f.st.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// kill abandons the replica the way a crash would: pending appends fail,
// nothing further is flushed.
func (f *followerCore) kill() { f.st.Kill() }

// Stats returns a copy of the follower counters.
func (f *followerCore) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// cut returns a deep copy of one owner's replicated state together with the
// owning shard's applied stream offset — the freshness cursor a read-plane
// answer is stamped with. The copy discipline mirrors gateway.OwnerCut:
// slices and the budget are copied under smu so the caller can stream and
// fold them while the tail loop keeps applying frames. ok is false when the
// replica has never seen the owner.
func (f *followerCore) cut(owner string) (st store.OwnerState, cursor uint64, ok bool) {
	sid := store.ShardFor(owner, f.shards)
	f.smu.Lock()
	defer f.smu.Unlock()
	src := f.states[sid][owner]
	if src == nil {
		return store.OwnerState{}, f.counts[sid], false
	}
	st = *src
	st.Events = append([]leakage.Event(nil), src.Events...)
	st.Spilled = append([]store.SegmentRef(nil), src.Spilled...)
	st.Tail = append([]store.Batch(nil), src.Tail...)
	if src.Budget != nil {
		st.Budget = src.Budget.Clone()
	}
	return st, f.counts[sid], true
}
