package cluster_test

import (
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dpsync/internal/client"
	"dpsync/internal/cluster"
	"dpsync/internal/core"
	"dpsync/internal/dp"
	"dpsync/internal/faultnet"
	"dpsync/internal/gateway"
	"dpsync/internal/record"
	"dpsync/internal/seal"
	"dpsync/internal/server"
	"dpsync/internal/strategy"
)

const (
	failoverSyncEps = 0.25
	failoverTTL     = 300 * time.Millisecond
)

func yellow(tick int, id uint16) record.Record {
	return record.Record{PickupTime: record.Tick(tick), PickupID: id, Provider: record.YellowCab}
}

// ownerSpecs is the three-strategy owner mix shared with the gateway
// durability tests: one sync-on-every-arrival owner (SUR) and two DP-timed
// owners with fixed noise seeds, so reference and cluster runs see
// identical traces.
func ownerSpecs(t *testing.T) []struct {
	name string
	mk   func() strategy.Strategy
} {
	t.Helper()
	return []struct {
		name string
		mk   func() strategy.Strategy
	}{
		{"owner-sur", func() strategy.Strategy { return strategy.NewSUR() }},
		{"owner-timer", func() strategy.Strategy {
			s, err := strategy.NewTimer(strategy.TimerConfig{
				Epsilon: 0.5, Period: 30, FlushInterval: 150, FlushSize: 5,
				Source: dp.NewSeededSource(41),
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"owner-ant", func() strategy.Strategy {
			s, err := strategy.NewANT(strategy.ANTConfig{
				Epsilon: 0.5, Threshold: 10, FlushInterval: 150, FlushSize: 5,
				Source: dp.NewSeededSource(42),
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
}

// startNode brings one cluster node up with the test's serving shape: few
// shards, small snapshot/history windows so a 300-tick trace crosses
// rotations and spills on both the primary and the replica.
func startNode(t *testing.T, id string, lease cluster.Lease, key []byte, ttl time.Duration, dialer func(string) (net.Conn, error)) *cluster.Node {
	t.Helper()
	n, err := cluster.Start(cluster.Config{
		Addr:     "127.0.0.1:0",
		NodeID:   id,
		StoreDir: t.TempDir(),
		Gateway: gateway.Config{
			Key: key, Shards: 2,
			SnapshotEvery: 16, HistoryWindow: 8,
			SyncEpsilon: failoverSyncEps,
		},
		Lease:     lease,
		LeaseTTL:  ttl,
		Heartbeat: 20 * time.Millisecond,
		RingSize:  64,
		Dialer:    dialer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func waitPromoted(t *testing.T, n *cluster.Node, within time.Duration) {
	t.Helper()
	select {
	case <-n.Promoted():
	case <-time.After(within):
		t.Fatalf("node %s did not promote within %v (role %v)", n.Addr(), within, n.Role())
	}
}

// TestClusterReplicationAndPromotionSmoke pins the replication pipeline
// end to end without faults: a follower tails the primary's committed
// stream entry for entry, and after a crash-kill of the primary it
// promotes and serves the same owner history.
func TestClusterReplicationAndPromotionSmoke(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	lease := cluster.NewMemLease(nil)
	a := startNode(t, "node-a", lease, key, failoverTTL, nil)
	b := startNode(t, "node-b", lease, key, failoverTTL, nil)
	if a.Role() != cluster.RolePrimary || b.Role() != cluster.RoleFollower {
		t.Fatalf("roles: a=%v b=%v", a.Role(), b.Role())
	}

	// Let the follower join before driving load, so every committed entry
	// ships on the live stream and the catch-up below is exact.
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Hub.Followers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never connected to the primary")
		}
		time.Sleep(5 * time.Millisecond)
	}

	conn, err := client.DialGateway(a.Addr(), key,
		client.WithAddrs(b.Addr()), client.WithReconnect(100), client.WithResyncWindow(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	own := conn.Owner("owner-1")
	if err := own.Setup([]record.Record{yellow(0, 10), yellow(0, 20)}); err != nil {
		t.Fatal(err)
	}
	const preKill = 20
	for i := 1; i <= preKill; i++ {
		if err := own.Update([]record.Record{yellow(i, uint16(i%record.NumLocations+1))}); err != nil {
			t.Fatal(err)
		}
	}

	// Replication is asynchronous; wait until the replica has folded every
	// committed entry, so the promoted clock provably equals the acked one.
	for b.Stats().Follower.Applied < preKill+1 {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %+v", b.Stats().Follower)
		}
		time.Sleep(5 * time.Millisecond)
	}

	a.Kill()
	waitPromoted(t, b, 10*time.Second)
	if b.Role() != cluster.RolePrimary {
		t.Fatalf("promoted node reports role %v", b.Role())
	}

	// The same connection keeps working: the rotation lands on the promoted
	// node and the resume protocol realigns the sequence numbers.
	const postKill = 10
	for i := preKill + 1; i <= preKill+postKill; i++ {
		if err := own.Update([]record.Record{yellow(i, uint16(i%record.NumLocations+1))}); err != nil {
			t.Fatal(err)
		}
	}

	gw := b.Gateway()
	if gw == nil {
		t.Fatal("promoted node has no gateway")
	}
	pat := gw.ObservedPattern("owner-1")
	if want := 1 + preKill + postKill; pat.Updates() != want {
		t.Fatalf("promoted transcript has %d events, want %d", pat.Updates(), want)
	}
	wantLedger := dp.NewBudget()
	if err := wantLedger.Charge("m_setup", failoverSyncEps, dp.Sequential); err != nil {
		t.Fatal(err)
	}
	for u := 1; u < pat.Updates(); u++ {
		if err := wantLedger.Charge("m_update", failoverSyncEps, dp.Sequential); err != nil {
			t.Fatal(err)
		}
	}
	if got := gw.ObservedLedger("owner-1"); !got.Equal(wantLedger) {
		t.Fatalf("promoted ledger diverged:\n got: %s\nwant: %s", got.Describe(), wantLedger.Describe())
	}
	if st := b.Stats(); st.Follower.Applied < preKill+1 {
		t.Fatalf("sealed replica stats lost the applied count: %+v", st.Follower)
	}
}

// TestClusterFailoverDifferential is the acceptance test for the cluster:
// across seeds, the primary is crash-killed at a random tick under the
// three-strategy owner mix with connection churn and link faults on both
// the client and replication paths; a follower promotes, the surviving
// clients finish the trace against it, and every owner's transcript and
// ε ledger must end bit-identical to an uninterrupted single-owner
// internal/server run — no lost committed sync, no double-charged ε, no
// phantom transcript event.
func TestClusterFailoverDifferential(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	specs := ownerSpecs(t)
	const ticks = 300

	// Uninterrupted single-owner references (independent of seed: the trace
	// is a pure function of the spec index), computed once.
	wantPatterns := map[string]string{}
	wantLedgers := map[string]*dp.Budget{}
	for i, spec := range specs {
		srv, err := server.New("127.0.0.1:0", key, nil)
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve() }()
		cl, err := client.Dial(srv.Addr(), key)
		if err != nil {
			t.Fatal(err)
		}
		owner, err := core.New(core.Config{Strategy: spec.mk(), Database: cl})
		if err != nil {
			t.Fatal(err)
		}
		if err := owner.Setup([]record.Record{yellow(0, 10), yellow(0, 20)}); err != nil {
			t.Fatal(err)
		}
		for tick := 1; tick <= ticks; tick++ {
			var terr error
			if (tick+i)%3 == 0 {
				terr = owner.Tick(yellow(tick, uint16(tick%record.NumLocations+1)))
			} else {
				terr = owner.Tick()
			}
			if terr != nil {
				t.Fatal(terr)
			}
		}
		pat := srv.ObservedPattern()
		wantPatterns[spec.name] = pat.String()
		ledger := dp.NewBudget()
		if err := ledger.Charge("m_setup", failoverSyncEps, dp.Sequential); err != nil {
			t.Fatal(err)
		}
		for u := 1; u < pat.Updates(); u++ {
			if err := ledger.Charge("m_update", failoverSyncEps, dp.Sequential); err != nil {
				t.Fatal(err)
			}
		}
		wantLedgers[spec.name] = ledger
		cl.Close()
		srv.Close()
	}

	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			lease := cluster.NewMemLease(nil)
			// Satellite faults: the replication tail dials through a fault
			// injector (resets, truncations, stalls, duplicated frames), and
			// so do the clients. Budgets bound the chaos so the trace always
			// terminates.
			replInj := faultnet.New(faultnet.DefaultConfig(seed*101+3, 25))
			clientInj := faultnet.New(faultnet.DefaultConfig(seed*7+1, 25))

			a := startNode(t, "node-a", lease, key, failoverTTL, nil)
			b := startNode(t, "node-b", lease, key, failoverTTL, replInj.Dialer(nil))
			if a.Role() != cluster.RolePrimary {
				t.Fatalf("node-a role %v", a.Role())
			}

			conn, err := client.DialGateway(a.Addr(), key,
				client.WithAddrs(b.Addr()),
				client.WithReconnect(300),
				client.WithResyncWindow(-1),
				client.WithDialer(clientInj.Dialer(nil)))
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			owners := make([]*core.Owner, len(specs))
			for i, spec := range specs {
				owner, err := core.New(core.Config{Strategy: spec.mk(), Database: conn.Owner(spec.name)})
				if err != nil {
					t.Fatal(err)
				}
				if err := owner.Setup([]record.Record{yellow(0, 10), yellow(0, 20)}); err != nil {
					t.Fatal(err)
				}
				owners[i] = owner
			}

			killTick := 60 + rng.Intn(150)
			t.Logf("killing primary at tick %d", killTick)
			for tick := 1; tick <= ticks; tick++ {
				if tick == killTick {
					a.Kill()
				} else if rng.Intn(89) == 0 {
					conn.Drop() // connection churn: reconnect + replay mid-trace
				}
				for j, owner := range owners {
					var terr error
					if (tick+j)%3 == 0 {
						terr = owner.Tick(yellow(tick, uint16(tick%record.NumLocations+1)))
					} else {
						terr = owner.Tick()
					}
					if terr != nil {
						t.Fatalf("tick %d owner %s: %v", tick, specs[j].name, terr)
					}
				}
			}
			waitPromoted(t, b, 15*time.Second)
			gw := b.Gateway()
			if gw == nil {
				t.Fatal("promoted node has no gateway")
			}

			for i, spec := range specs {
				got := gw.ObservedPattern(spec.name)
				if got.String() != wantPatterns[spec.name] {
					t.Errorf("%s transcript diverged across failover:\n cluster: %s\n  single: %s",
						spec.name, got.String(), wantPatterns[spec.name])
				}
				ledger := gw.ObservedLedger(spec.name)
				if !ledger.Equal(wantLedgers[spec.name]) {
					t.Errorf("%s ledger diverged (double spend or lost charge):\n got: %s\nwant: %s",
						spec.name, ledger.Describe(), wantLedgers[spec.name].Describe())
				}
				// Owner-side bookkeeping agrees event for event.
				want := owners[i].Pattern()
				if got.Updates() != want.Updates() {
					t.Errorf("%s: promoted node saw %d updates, owner posted %d",
						spec.name, got.Updates(), want.Updates())
					continue
				}
				for j, e := range got.Events {
					if e.Volume != want.Events[j].Volume {
						t.Errorf("%s: event %d volume %d != owner volume %d",
							spec.name, j, e.Volume, want.Events[j].Volume)
					}
				}
			}
			// The replica genuinely replicated (stream or snapshot transfer),
			// rather than rebuilding everything from client resync.
			if st := b.Stats(); st.Follower.Applied == 0 && st.Follower.Snapshots == 0 {
				t.Errorf("follower never replicated anything before promotion: %+v", st.Follower)
			}
			if c := replInj.Counts(); c.Resets+c.Truncations+c.Stalls+c.Duplicates == 0 {
				t.Logf("note: replication fault budget unspent this seed")
			}
		})
	}
}

// severConn severs the replication link after a byte budget is read — the
// read-side failure faultnet models as a peer reset. Every severance forces
// the follower back through dial + join, so the session count below counts
// cursor resumes.
type severConn struct {
	net.Conn
	remaining int
}

func (c *severConn) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		c.Conn.Close()
		return 0, fmt.Errorf("severconn: injected link loss")
	}
	if len(p) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.Conn.Read(p)
	c.remaining -= n
	return n, err
}

// TestReplicationResumeAcrossLinkFaults pins the replication resume
// protocol: the follower's tail link dies every few KB, and every rejoin
// must resume from the last applied cursor — no gap (which would force a
// snapshot transfer for every entry) and no re-apply (which the final
// transcript and ledger equality would expose as phantom events or double
// charges).
func TestReplicationResumeAcrossLinkFaults(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	lease := cluster.NewMemLease(nil)
	rng := rand.New(rand.NewSource(7))
	var sessions atomic.Int64
	var severing atomic.Bool
	severing.Store(true)
	dialer := func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		sessions.Add(1)
		if !severing.Load() {
			return conn, nil
		}
		return &severConn{Conn: conn, remaining: 600 + rng.Intn(2500)}, nil
	}

	a := startNode(t, "node-a", lease, key, failoverTTL, nil)
	b := startNode(t, "node-b", lease, key, failoverTTL, dialer)

	conn, err := client.DialGateway(a.Addr(), key,
		client.WithAddrs(b.Addr()), client.WithReconnect(100), client.WithResyncWindow(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	own := conn.Owner("owner-1")
	if err := own.Setup([]record.Record{yellow(0, 10), yellow(0, 20)}); err != nil {
		t.Fatal(err)
	}
	const total = 60
	for i := 1; i <= total; i++ {
		if err := own.Update([]record.Record{yellow(i, uint16(i%record.NumLocations+1))}); err != nil {
			t.Fatal(err)
		}
		// A breath per sync so the tail loop interleaves with the severances
		// instead of catching up in one burst after the last one.
		if i%10 == 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Let the replica converge (severances off so the last session survives),
	// then fail over onto it.
	severing.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := b.Stats().Follower
		// The ring (64) outlives the whole trace (61 entries), so every
		// resume is served from the cursor — a snapshot transfer here would
		// mean a cursor the primary could not extend contiguously.
		if st.Snapshots != 0 {
			t.Fatalf("resume fell back to a snapshot transfer: %+v", st)
		}
		if st.Applied >= total+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := sessions.Load(); got < 2 {
		t.Fatalf("link never severed: %d replication sessions (want several)", got)
	}

	a.Kill()
	waitPromoted(t, b, 10*time.Second)
	gw := b.Gateway()
	pat := gw.ObservedPattern("owner-1")
	if want := total + 1; pat.Updates() != want {
		t.Fatalf("transcript after %d resumed sessions has %d events, want %d (gap or re-apply)",
			sessions.Load(), pat.Updates(), want)
	}
	wantLedger := dp.NewBudget()
	if err := wantLedger.Charge("m_setup", failoverSyncEps, dp.Sequential); err != nil {
		t.Fatal(err)
	}
	for u := 1; u < pat.Updates(); u++ {
		if err := wantLedger.Charge("m_update", failoverSyncEps, dp.Sequential); err != nil {
			t.Fatal(err)
		}
	}
	if got := gw.ObservedLedger("owner-1"); !got.Equal(wantLedger) {
		t.Fatalf("ledger diverged across resumed sessions:\n got: %s\nwant: %s",
			got.Describe(), wantLedger.Describe())
	}
	t.Logf("replication resumed across %d sessions (applied %d, snapshots %d)",
		sessions.Load(), b.Stats().Follower.Applied, b.Stats().Follower.Snapshots)
}

// TestFollowerClose pins the quiet shutdown edge: closing a follower must
// seal its replica and return promptly, without disturbing the primary.
func TestFollowerClose(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	lease := cluster.NewMemLease(nil)
	a := startNode(t, "node-a", lease, key, failoverTTL, nil)
	b := startNode(t, "node-b", lease, key, failoverTTL, nil)

	conn, err := client.DialGateway(a.Addr(), key, client.WithReconnect(10))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	own := conn.Owner("owner-1")
	if err := own.Setup([]record.Record{yellow(0, 10)}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := own.Update([]record.Record{yellow(i, 1)}); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() { done <- b.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follower close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower Close deadlocked")
	}

	// Primary is unaffected.
	for i := 6; i <= 10; i++ {
		if err := own.Update([]record.Record{yellow(i, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if a.Role() != cluster.RolePrimary {
		t.Fatalf("primary role changed to %v after follower close", a.Role())
	}
}

// TestGracefulHandoverUnderDrain drives the hard shutdown edge: the primary
// is closed gracefully with a short drain deadline while clients are
// mid-trace, so the drain deadline fires during the very failover it
// triggers. Close must stay bounded, exactly one node may serve afterwards,
// and the clients must finish the trace through the promoted node with a
// complete transcript.
func TestGracefulHandoverUnderDrain(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	lease := cluster.NewMemLease(nil)
	mk := func(id string) *cluster.Node {
		n, err := cluster.Start(cluster.Config{
			Addr: "127.0.0.1:0", NodeID: id, StoreDir: t.TempDir(),
			Gateway: gateway.Config{
				Key: key, Shards: 2, SnapshotEvery: 16, HistoryWindow: 8,
				SyncEpsilon:  failoverSyncEps,
				DrainTimeout: 100 * time.Millisecond,
			},
			Lease: lease, LeaseTTL: failoverTTL,
			Heartbeat: 20 * time.Millisecond, RingSize: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	a := mk("node-a")
	b := mk("node-b")

	conn, err := client.DialGateway(a.Addr(), key,
		client.WithAddrs(b.Addr()), client.WithReconnect(200), client.WithResyncWindow(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	own := conn.Owner("owner-1")
	if err := own.Setup([]record.Record{yellow(0, 10)}); err != nil {
		t.Fatal(err)
	}

	const total = 80
	uploaded := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		for i := 1; i <= total; i++ {
			if i == 20 {
				close(started)
			}
			if err := own.Update([]record.Record{yellow(i, uint16(i%record.NumLocations+1))}); err != nil {
				uploaded <- fmt.Errorf("update %d: %w", i, err)
				return
			}
		}
		uploaded <- nil
	}()

	<-started
	closeStart := time.Now()
	closeDone := make(chan error, 1)
	go func() { closeDone <- a.Close() }()
	select {
	case <-closeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("primary Close did not return (drain deadline failed to bound it)")
	}
	t.Logf("primary close took %v", time.Since(closeStart))

	waitPromoted(t, b, 10*time.Second)
	select {
	case err := <-uploaded:
		if err != nil {
			t.Fatalf("trace did not survive the handover: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("client trace wedged across the handover")
	}

	// No double-primary: the old primary's gateway is fully shut, the new
	// one serves, and the transcript on the survivor is complete.
	select {
	case <-a.Gateway().Closed():
	default:
		t.Fatal("old primary's gateway still open after Close returned")
	}
	if b.Role() != cluster.RolePrimary {
		t.Fatalf("follower never took over: role %v", b.Role())
	}
	pat := b.Gateway().ObservedPattern("owner-1")
	if want := total + 1; pat.Updates() != want {
		t.Fatalf("survivor transcript has %d events, want %d", pat.Updates(), want)
	}
}

// TestFollowerCloseDuringFailover races a follower's shutdown against its
// own promotion: the primary crash-dies, and while the follower is
// campaigning (or already mid-promotion) it is told to close. Whatever side
// wins, Close must return without deadlock and without leaving a serving
// gateway behind.
func TestFollowerCloseDuringFailover(t *testing.T) {
	for i := 0; i < 3; i++ {
		t.Run(fmt.Sprintf("delay=%d", i), func(t *testing.T) {
			key, err := seal.NewRandomKey()
			if err != nil {
				t.Fatal(err)
			}
			lease := cluster.NewMemLease(nil)
			ttl := 100 * time.Millisecond
			a := startNode(t, "node-a", lease, key, ttl, nil)
			b := startNode(t, "node-b", lease, key, ttl, nil)
			a.Kill()
			// Stagger the close across the failover window: before the lease
			// lapses, around expiry, and after promotion has likely begun.
			time.Sleep(time.Duration(i) * ttl)
			done := make(chan error, 1)
			go func() { done <- b.Close() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("close during failover: %v", err)
				}
			case <-time.After(15 * time.Second):
				t.Fatal("Close deadlocked against promotion")
			}
			if gw := b.Gateway(); gw != nil {
				select {
				case <-gw.Closed():
				default:
					t.Fatal("node closed but its gateway still serves")
				}
			}
		})
	}
}
