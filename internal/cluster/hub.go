package cluster

import (
	"bufio"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"dpsync/internal/gateway"
	"dpsync/internal/store"
	"dpsync/internal/telemetry"
	"dpsync/internal/wire"
)

// The primary's half of replication. The Hub taps the gateway's durable
// commit stream (gateway.Replicator) and ships every committed WAL entry,
// in commit order, to however many followers are tailing. Per shard it
// keeps a bounded ring of recently shipped frames keyed by a monotone
// stream offset; a follower joins with its per-shard cursors and is served
// the suffix from the ring when it can be, or a full snapshot transfer —
// the owner histories streamed straight off the primary's history segments
// — when it has fallen behind the ring or its cursors belong to another
// primary's stream.
//
// Offsets are not invented by the Hub: a shard's offset is its total
// committed entry count (the sum of its owners' clocks), which both sides
// can re-derive from their own recovered state. That is what makes a
// follower's resume cursor durable — after a restart it rejoins at exactly
// the entry after the last one it applied, no gap, no re-apply. Cursors
// are still stream-local: a follower whose cursors disagree with this
// primary's history (ahead of head, or behind the ring) is healed by a
// snapshot transfer, whose per-owner tick folding is immune to offset
// divergence.

const (
	// DefaultRingSize is the per-shard count of recently committed frames
	// the primary retains for follower catch-up; a follower further behind
	// gets a snapshot transfer instead.
	DefaultRingSize = 4096
	// DefaultHeartbeat is the idle-stream heartbeat interval. A follower's
	// read deadline is derived from it, so silence means a dead primary,
	// not a quiet one.
	DefaultHeartbeat = 250 * time.Millisecond
	// replHandshakeTimeout bounds the join exchange on both sides.
	replHandshakeTimeout = 10 * time.Second
	// replWriteTimeout bounds one frame batch's write to a follower; a
	// follower that stalls longer sheds itself (it rejoins by cursor).
	replWriteTimeout = 30 * time.Second
	// senderBatch caps frames shipped per sender iteration so one huge
	// backlog cannot starve the heartbeat/death checks.
	senderBatch = 256
)

// HubConfig assembles a Hub.
type HubConfig struct {
	// RingSize is the per-shard catch-up ring length (0 = DefaultRingSize).
	RingSize int
	// Heartbeat is the idle-stream heartbeat interval (0 = DefaultHeartbeat).
	Heartbeat time.Duration
	// Clock stamps CommitNs on shipped frames (nil = time.Now); the
	// follower's replication-lag metric is the difference against its own
	// clock, so tests inject a shared fake.
	Clock func() time.Time
	// Logger receives bounded diagnostics; nil discards.
	Logger *slog.Logger
	// Telemetry receives the hub's replication metrics (frames shipped,
	// snapshot fallbacks, per-follower cursor lag in entries and ms). Nil
	// disables export.
	Telemetry *telemetry.Registry
}

// HubStats are the primary-side replication counters.
type HubStats struct {
	// Followers is the number of currently connected followers.
	Followers int
	// Shipped counts live stream entries written to followers (snapshot
	// bootstrap entries excluded).
	Shipped uint64
	// Snapshots counts per-shard snapshot transfers served.
	Snapshots uint64
}

// replRing is one shard's catch-up buffer: frames[i] is the encoded stream
// frame for offset head-len(frames)+1+i, and times[i] is that frame's
// CommitNs — kept parallel so the lag collector can turn a follower's owed
// suffix into milliseconds without decoding frames. For the sparse sampled
// entries, traced[i] is the same entry's trace-propagating (v2) encoding and
// meta[i] the ship-span completion state; both stay nil for unsampled
// entries, so tracing costs the ring two nil slots per frame.
type replRing struct {
	head   uint64
	frames [][]byte
	times  []int64
	traced [][]byte
	meta   []*shipMeta
}

// shipMeta completes one sampled entry's repl-ship span. The span's ID was
// Alloc'd at commit time (it is the parent the follower's span joins under,
// so it must be on the wire before it has an end); the first sender to put
// the entry on a wire records it — once, however many followers tail.
type shipMeta struct {
	tc    telemetry.TraceContext // positioned at the entry's wal-commit span
	ship  uint32                 // the Alloc'd repl-ship span ID
	start time.Time
	once  sync.Once
}

// oldest is the lowest offset still buffered; callers check len(frames)>0.
func (r *replRing) oldest() uint64 { return r.head - uint64(len(r.frames)) + 1 }

// hubSub is one connected follower: its conn, its per-shard cursors (owned
// by its sender goroutine), and the channels that wake or kill the sender.
type hubSub struct {
	conn    net.Conn
	node    string // follower's self-reported node ID (labels its lag series)
	version byte   // negotiated replication codec version
	cursors []uint64
	wake    chan struct{} // capacity 1; Committed nudges idle senders
	dead    chan struct{} // closed when the conn dies (read watchdog)
	busy    bool          // sender holds collected frames it has not flushed yet
}

// Hub is the primary-side replication fan-out. Create with NewHub, wire it
// into the gateway via Config.Replicator, then Bind it to the gateway it
// serves before Serve starts accepting.
type Hub struct {
	cfg   HubConfig
	log   *slog.Logger
	quit  chan struct{}
	unreg func() // telemetry collector unregistration; nil without Telemetry

	mu        sync.Mutex
	gw        *gateway.Gateway
	rings     []replRing
	subs      map[*hubSub]struct{}
	closed    bool
	shipped   uint64
	snapshots uint64
}

// NewHub builds a hub. It is inert until Bind.
func NewHub(cfg HubConfig) *Hub {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	h := &Hub{cfg: cfg, quit: make(chan struct{}), subs: map[*hubSub]struct{}{}}
	if cfg.Logger != nil {
		h.log = cfg.Logger
	} else {
		h.log = telemetry.Discard()
	}
	if reg := cfg.Telemetry; reg != nil {
		h.unreg = reg.RegisterCollector(h.emitTelemetry)
	}
	return h
}

// emitTelemetry is the hub's scrape-time collector. It runs under h.mu — the
// admin plane's goroutine, never a shard worker — so a scrape can observe
// follower cursors without perturbing the commit path (Committed holds the
// same mutex only for its ring append).
func (h *Hub) emitTelemetry(emit func(telemetry.Sample)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	emit(telemetry.Sample{Name: "repl_followers", Help: "connected followers",
		Kind: telemetry.KindGauge, Value: float64(len(h.subs))})
	emit(telemetry.Sample{Name: "repl_shipped_total", Help: "live stream entries written to followers",
		Kind: telemetry.KindCounter, Value: float64(h.shipped)})
	emit(telemetry.Sample{Name: "repl_snapshots_total", Help: "per-shard snapshot transfers served",
		Kind: telemetry.KindCounter, Value: float64(h.snapshots)})
	now := h.cfg.Clock().UnixNano()
	for sub := range h.subs {
		lagE, lagMs := h.lagLocked(sub, now)
		emit(telemetry.Sample{
			Name: fmt.Sprintf("repl_follower_lag_entries{follower=%q}", sub.node),
			Help: "entries committed on the primary but not yet shipped to this follower",
			Kind: telemetry.KindGauge, Value: float64(lagE)})
		emit(telemetry.Sample{
			Name: fmt.Sprintf("repl_follower_lag_ms{follower=%q}", sub.node),
			Help: "age of the oldest entry owed to this follower, milliseconds",
			Kind: telemetry.KindGauge, Value: lagMs})
	}
}

// lagLocked computes one follower's owed-entry count and the age of the
// oldest owed frame still in a ring (0 ms when fully caught up, or when the
// owed suffix fell off the ring — a snapshot transfer is already due then).
func (h *Hub) lagLocked(sub *hubSub, nowNs int64) (entries int64, ms float64) {
	var oldest int64
	for sid, c := range sub.cursors {
		r := &h.rings[sid]
		if c >= r.head {
			continue
		}
		entries += int64(r.head - c)
		if len(r.times) > 0 && c+1 >= r.oldest() {
			if ts := r.times[c+1-r.oldest()]; oldest == 0 || ts < oldest {
				oldest = ts
			}
		}
	}
	if oldest != 0 {
		ms = float64(nowNs-oldest) / 1e6
	}
	return entries, ms
}

// Bind attaches the hub to the gateway it replicates and initializes each
// shard's stream head to the shard's recovered committed entry count (the
// sum of its owners' clocks) — so offsets continue the durable stream
// rather than restarting at zero on every primary. Call after gateway.New
// and before Serve accepts connections.
func (h *Hub) Bind(gw *gateway.Gateway) error {
	if gw.Store() == nil {
		return fmt.Errorf("cluster: hub requires a durable gateway (StoreDir)")
	}
	rings := make([]replRing, gw.Shards())
	for sid := range rings {
		var head uint64
		ok := gw.OwnerCut(sid, func(states []store.OwnerState) {
			for _, st := range states {
				head += st.Clock
			}
		})
		if !ok {
			return fmt.Errorf("cluster: gateway shut down during hub bind")
		}
		rings[sid].head = head
	}
	h.mu.Lock()
	h.gw = gw
	h.rings = rings
	h.mu.Unlock()
	return nil
}

// Close tears the hub down: idle senders wake and exit, connected followers
// are severed (they rejoin whoever is primary next from their cursors).
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	conns := make([]net.Conn, 0, len(h.subs))
	for sub := range h.subs {
		conns = append(conns, sub.conn)
	}
	h.mu.Unlock()
	close(h.quit)
	for _, c := range conns {
		_ = c.Close()
	}
	if h.unreg != nil {
		h.unreg()
	}
}

// Stats reports the hub's counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HubStats{Followers: len(h.subs), Shipped: h.shipped, Snapshots: h.snapshots}
}

// FollowerStatus is one connected follower's stream position, for the status
// plane.
type FollowerStatus struct {
	Node       string
	Cursors    []uint64
	LagEntries int64
	LagMs      float64
}

// Followers reports every connected follower's cursors and lag.
func (h *Hub) Followers() []FollowerStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.cfg.Clock().UnixNano()
	out := make([]FollowerStatus, 0, len(h.subs))
	for sub := range h.subs {
		lagE, lagMs := h.lagLocked(sub, now)
		cursors := make([]uint64, len(sub.cursors))
		copy(cursors, sub.cursors)
		out = append(out, FollowerStatus{Node: sub.node, Cursors: cursors, LagEntries: lagE, LagMs: lagMs})
	}
	return out
}

// Committed implements gateway.Replicator: one durably committed sync
// entry, on its shard's worker, in commit order. It encodes the stream
// frame, appends it to the shard's ring, and nudges idle senders — never
// blocking: a follower that cannot keep up falls off the ring and is healed
// by a snapshot transfer, not by stalling the commit path. For sampled
// entries (tc carries a trace, positioned at the wal-commit span) it also
// Allocs the repl-ship span — whose ID crosses the wire as the parent the
// follower's apply span joins under — and encodes a trace-propagating (v2)
// sibling frame for followers that negotiated the traced codec.
func (h *Hub) Committed(sid int, e store.Entry, tc telemetry.TraceContext) {
	raw, err := store.EncodeEntryFrame(e)
	if err != nil {
		// Unreachable for an entry the WAL just committed; losing the frame
		// would silently desynchronize every follower, so log loudly.
		h.log.Error("cannot encode committed entry; followers will desynchronize",
			"shard", sid, "owner_hash", telemetry.OwnerHash(e.Owner), "err", err)
		return
	}
	h.mu.Lock()
	if h.closed || h.rings == nil || sid < 0 || sid >= len(h.rings) {
		h.mu.Unlock()
		return
	}
	r := &h.rings[sid]
	commitNs := h.cfg.Clock().UnixNano()
	payload, err := wire.EncodeReplFrame(wire.ReplFrame{
		Kind:     wire.ReplEntry,
		Shard:    uint32(sid),
		Offset:   r.head + 1,
		CommitNs: commitNs,
		Entry:    raw,
	})
	if err != nil {
		h.mu.Unlock()
		h.log.Error("cannot frame committed entry", "shard", sid, "err", err)
		return
	}
	var tracedPayload []byte
	var meta *shipMeta
	if tc.Sampled() {
		ship := tc.Alloc()
		meta = &shipMeta{tc: tc, ship: ship, start: h.cfg.Clock()}
		tracedPayload, err = wire.EncodeReplFrame(wire.ReplFrame{
			Kind:       wire.ReplEntryTraced,
			Shard:      uint32(sid),
			Offset:     r.head + 1,
			CommitNs:   commitNs,
			TraceID:    tc.TraceID(),
			ParentSpan: ship,
			Entry:      raw,
		})
		if err != nil {
			// The legacy frame already encoded; ship without the trace.
			h.log.Warn("cannot frame traced entry; shipping untraced", "shard", sid, "err", err)
			tracedPayload, meta = nil, nil
		}
	}
	r.head++
	r.frames = append(r.frames, payload)
	r.times = append(r.times, commitNs)
	r.traced = append(r.traced, tracedPayload)
	r.meta = append(r.meta, meta)
	if len(r.frames) > h.cfg.RingSize {
		// Trim from the front; re-copy so the backing array does not pin
		// every frame ever shipped.
		drop := len(r.frames) - h.cfg.RingSize
		kept := make([][]byte, h.cfg.RingSize)
		copy(kept, r.frames[drop:])
		r.frames = kept
		times := make([]int64, h.cfg.RingSize)
		copy(times, r.times[drop:])
		r.times = times
		traced := make([][]byte, h.cfg.RingSize)
		copy(traced, r.traced[drop:])
		r.traced = traced
		meta := make([]*shipMeta, h.cfg.RingSize)
		copy(meta, r.meta[drop:])
		r.meta = meta
	}
	for sub := range h.subs {
		select {
		case sub.wake <- struct{}{}:
		default:
		}
	}
	h.mu.Unlock()
}

// ServeConn implements gateway.Replicator: the join handshake, then the
// frame stream, on the connection's handler goroutine until the follower
// disconnects or the hub/gateway shuts down.
func (h *Hub) ServeConn(conn net.Conn, version byte) {
	h.mu.Lock()
	gw, ready := h.gw, !h.closed && h.rings != nil
	h.mu.Unlock()
	// Version negotiation: the ack carries min(proposed, ours), so a legacy
	// follower keeps its v1 stream and a newer one is capped at what this
	// primary speaks. Version 0 is not a protocol.
	negotiated := wire.NegotiateReplVersion(version)
	if !ready || negotiated == 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(replHandshakeTimeout))
		_ = wire.WriteHelloRefused(conn)
		return
	}
	_ = conn.SetWriteDeadline(time.Now().Add(replHandshakeTimeout))
	if err := wire.WriteReplHelloAck(conn, negotiated); err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Now().Add(replHandshakeTimeout))
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		return
	}
	join, err := wire.DecodeReplJoin(payload)
	if err != nil {
		h.log.Warn("malformed follower join", "conn", conn.RemoteAddr().String(), "err", err)
		return
	}
	shards := len(h.rings)
	cursors := make([]uint64, shards)
	for _, c := range join.Cursors {
		if int(c.Shard) >= shards {
			h.log.Warn("follower cursor for unknown shard",
				"follower", join.Node, "shard", c.Shard, "shards", shards)
			return
		}
		cursors[c.Shard] = c.Offset
	}
	snap := false
	h.mu.Lock()
	for sid := range cursors {
		if h.needsSnapshotLocked(sid, cursors[sid]) {
			snap = true
		}
	}
	h.mu.Unlock()
	_ = conn.SetWriteDeadline(time.Now().Add(replHandshakeTimeout))
	if err := wire.WriteFrame(conn, wire.EncodeReplJoinAck(wire.ReplJoinAck{Shards: uint32(shards), Snapshot: snap})); err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	sub := &hubSub{conn: conn, node: join.Node, version: negotiated, cursors: cursors, wake: make(chan struct{}, 1), dead: make(chan struct{})}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.subs, sub)
		h.mu.Unlock()
	}()
	// A follower never writes after its join, so a successful read here is a
	// protocol violation and an error is the conn dying — either way the
	// sender must stop. This watchdog is what lets the sender block on an
	// idle stream yet still notice a dead peer immediately.
	go func() {
		buf := make([]byte, 1)
		_, _ = conn.Read(buf)
		close(sub.dead)
	}()
	h.log.Info("follower joined", "follower", join.Node, "conn", conn.RemoteAddr().String(), "snapshot", snap)
	h.runSender(gw, sub, join.Node)
}

// needsSnapshotLocked decides whether a cursor can be served from the ring:
// a cursor ahead of the stream head belongs to another primary's history,
// and a cursor behind the oldest buffered frame has lost its suffix — both
// are healed by a snapshot transfer.
func (h *Hub) needsSnapshotLocked(sid int, cursor uint64) bool {
	r := &h.rings[sid]
	if cursor > r.head {
		return true
	}
	if cursor == r.head {
		return false
	}
	return len(r.frames) == 0 || cursor+1 < r.oldest()
}

// collect gathers up to senderBatch ring frames the follower is owed and
// advances its cursors. Followers on the traced codec get the trace-
// propagating encoding for sampled entries; metas are the ship spans the
// sender must complete once the frames are on the wire. resnap reports any
// shard that has meanwhile fallen off the ring (the caller runs a snapshot
// pass before waiting).
func (h *Hub) collect(sub *hubSub) (frames [][]byte, metas []*shipMeta, resnap bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sid := range sub.cursors {
		if len(frames) >= senderBatch {
			break
		}
		r := &h.rings[sid]
		c := sub.cursors[sid]
		if c >= r.head {
			continue
		}
		if h.needsSnapshotLocked(sid, c) {
			resnap = true
			continue
		}
		first := int(c + 1 - r.oldest())
		take := len(r.frames) - first
		if room := senderBatch - len(frames); take > room {
			take = room
		}
		for i := first; i < first+take; i++ {
			fr := r.frames[i]
			if sub.version >= wire.ReplVersionTraced && r.traced[i] != nil {
				fr = r.traced[i]
			}
			frames = append(frames, fr)
			if m := r.meta[i]; m != nil {
				metas = append(metas, m)
			}
		}
		sub.cursors[sid] = c + uint64(take)
	}
	h.shipped += uint64(len(frames))
	// Cursors advance before the write happens; busy keeps Flush honest
	// until the collected frames are actually on the wire.
	sub.busy = len(frames) > 0
	return frames, metas, resnap
}

// settle clears a sub's busy mark once its collected frames are flushed (or
// its sender is about to exit).
func (h *Hub) settle(sub *hubSub) {
	h.mu.Lock()
	sub.busy = false
	h.mu.Unlock()
}

// Flush implements the gateway's graceful-close flush hook: it blocks until
// every connected follower has consumed the committed stream (cursors at
// every shard head, no collected-but-unwritten frames), or until timeout.
// With no followers connected it returns immediately — the drain window's
// commits then survive in the store and the clients' resync windows alone.
func (h *Hub) Flush(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		h.mu.Lock()
		caught := !h.closed
		for sub := range h.subs {
			if sub.busy {
				caught = false
				break
			}
			for sid, c := range sub.cursors {
				if c < h.rings[sid].head {
					caught = false
					break
				}
			}
			if !caught {
				break
			}
		}
		h.mu.Unlock()
		if caught || time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// runSender is one follower's stream loop: snapshot transfers for shards the
// ring cannot serve, then ring frames as they commit, heartbeats when idle.
func (h *Hub) runSender(gw *gateway.Gateway, sub *hubSub, node string) {
	bw := bufio.NewWriter(sub.conn)
	for {
		for sid := range sub.cursors {
			h.mu.Lock()
			need := h.needsSnapshotLocked(sid, sub.cursors[sid])
			h.mu.Unlock()
			if need {
				if err := h.sendSnapshot(gw, sub, sid, bw); err != nil {
					h.log.Warn("snapshot transfer failed", "follower", node, "shard", sid, "err", err)
					return
				}
			}
		}
		frames, metas, resnap := h.collect(sub)
		if len(frames) > 0 {
			_ = sub.conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
			for _, fr := range frames {
				if err := wire.WriteFrame(bw, fr); err != nil {
					return
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
			// The entries are on a wire: complete their repl-ship spans. Once
			// per entry — the first sender to ship it wins; later followers
			// re-ship the same frame without re-recording.
			if len(metas) > 0 {
				now := time.Now()
				for _, m := range metas {
					m.once.Do(func() {
						m.tc.RecordSpan(telemetry.Span{
							ID: m.ship, Parent: m.tc.Span(), Name: "repl-ship",
							Start: m.start, End: now,
						})
					})
				}
			}
			h.settle(sub)
			continue
		}
		if resnap {
			continue
		}
		if err := bw.Flush(); err != nil {
			return
		}
		select {
		case <-sub.wake:
		case <-sub.dead:
			return
		case <-h.quit:
			return
		case <-time.After(h.cfg.Heartbeat):
			hb, err := wire.EncodeReplFrame(wire.ReplFrame{Kind: wire.ReplHeartbeat, CommitNs: h.cfg.Clock().UnixNano()})
			if err != nil {
				return
			}
			_ = sub.conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
			if wire.WriteFrame(bw, hb) != nil || bw.Flush() != nil {
				return
			}
		}
	}
}

// sendSnapshot heals one shard's stream for one follower: a commit-
// consistent cut of the shard's owner states is taken on the shard worker
// (recording the stream basis atomically — every commit is inside the cut
// or after the basis, never both), the shard's buffered history spill is
// flushed, and each owner's full batch history is streamed off the
// primary's own segments as bootstrap entries the follower folds by tick.
// The follower's cursor resumes from the basis.
func (h *Hub) sendSnapshot(gw *gateway.Gateway, sub *hubSub, sid int, bw *bufio.Writer) error {
	var basis uint64
	var states []store.OwnerState
	if ok := gw.OwnerCut(sid, func(sts []store.OwnerState) {
		h.mu.Lock()
		basis = h.rings[sid].head
		h.mu.Unlock()
		states = sts
	}); !ok {
		return fmt.Errorf("gateway shut down during cut")
	}
	st := gw.Store()
	if err := st.FlushHistory(sid); err != nil {
		return err
	}
	begin, err := wire.EncodeReplFrame(wire.ReplFrame{Kind: wire.ReplSnapBegin, Shard: uint32(sid), Offset: basis})
	if err != nil {
		return err
	}
	_ = sub.conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
	if err := wire.WriteFrame(bw, begin); err != nil {
		return err
	}
	for i := range states {
		owner := states[i].Owner
		err := st.StreamHistory(&states[i], func(bt store.Batch) error {
			raw, err := store.EncodeEntryFrame(store.Entry{Owner: owner, Batch: bt})
			if err != nil {
				return err
			}
			payload, err := wire.EncodeReplFrame(wire.ReplFrame{
				Kind: wire.ReplEntry, Shard: uint32(sid), CommitNs: h.cfg.Clock().UnixNano(), Entry: raw,
			})
			if err != nil {
				return err
			}
			_ = sub.conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
			return wire.WriteFrame(bw, payload)
		})
		if err != nil {
			return fmt.Errorf("owner %q: %w", owner, err)
		}
	}
	end, err := wire.EncodeReplFrame(wire.ReplFrame{Kind: wire.ReplSnapEnd, Shard: uint32(sid)})
	if err != nil {
		return err
	}
	_ = sub.conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
	if err := wire.WriteFrame(bw, end); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Under h.mu: the telemetry collector and Followers read cursors from
	// other goroutines (collect already guards its accesses the same way).
	h.mu.Lock()
	sub.cursors[sid] = basis
	h.snapshots++
	h.mu.Unlock()
	return nil
}
