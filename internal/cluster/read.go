package cluster

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dpsync/internal/edb"
	"dpsync/internal/oblidb"
	"dpsync/internal/qcache"
	"dpsync/internal/seal"
	"dpsync/internal/store"
	"dpsync/internal/wire"
)

// The follower read plane: a follower is no longer a node that serves
// nobody. A connection that opens with the read-only hello ("DPSQ") is
// served queries and stats straight from the replicated store, bounded by
// the replica's freshness cursor — the shard's applied stream offset that
// followerCore.cut stamps on every observation.
//
// Freshness is the client's choice, not the replica's guess: a query
// carries Request.MinOffset (0 = any committed prefix is acceptable), and a
// replica whose cursor has not reached the bound refuses with the typed
// wire.ErrStale carrying its cursor, never with a silently stale answer.
// The client falls back to the primary, which is trivially fresh.
//
// Everything served here is the committed prefix by construction: the tail
// loop folds only group-committed WAL entries the primary shipped, and cut
// observes whole frames (followerCore.smu). Queries are pure
// post-processing of already-released DP state, so the read plane touches
// no ledger — replica reads spend exactly nothing, same as primary cache
// hits.

// readPlaneReadTimeout bounds silence on a read-only connection; analyst
// dashboards poll, so a quiet read conn is an abandoned one.
const readPlaneReadTimeout = 2 * time.Minute

// readPlaneWriteTimeout bounds one response write.
const readPlaneWriteTimeout = 10 * time.Second

// ReadPlaneStats snapshots the follower read-plane counters.
type ReadPlaneStats struct {
	// Queries counts served read requests (queries + stats), refusals
	// included.
	Queries int64
	// Stale counts typed freshness refusals (cursor < MinOffset).
	Stale int64
	// CacheHits/CacheMisses are the replica-side noise-reuse answer cache
	// counters.
	CacheHits   int64
	CacheMisses int64
	// Rebuilds counts backend materializations — one whenever an owner is
	// first read or its replicated clock moved since the last read.
	Rebuilds int64
}

// readTenant is one owner's materialized read-only view: a backend rebuilt
// from the replicated history at a specific committed clock, plus the
// replica's own answer cache. The cache needs no invalidation hook — a
// clock advance discards the whole tenant (cache included) on the next
// read, which is the same invalidate-at-commit rule the primary enforces,
// observed lazily.
type readTenant struct {
	db     edb.Database
	sealed sealedIngest // non-nil when the backend ingests ciphertexts directly
	clock  uint64
	qc     *qcache.Cache
}

// sealedIngest mirrors the gateway's sealed-backend fast path (the type is
// internal to package gateway; the contract is structural).
type sealedIngest interface {
	SetupSealed([]seal.Sealed) error
	UpdateSealed([]seal.Sealed) error
}

// readPlane serves the read-only protocol on a follower. One mutex orders
// every request: backends are not concurrency-safe, and replica read load
// is dashboard-scale, not ingest-scale — correctness wins over parallelism
// here.
type readPlane struct {
	log        *slog.Logger
	fol        *followerCore
	newBackend func(owner string) (edb.Database, error)
	sealer     *seal.Sealer
	qcap       int

	mu      sync.Mutex
	tenants map[string]*readTenant
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup

	queries  atomic.Int64
	stale    atomic.Int64
	qcHits   atomic.Int64
	qcMiss   atomic.Int64
	rebuilds atomic.Int64
}

// newReadPlane resolves the backend constructor and ingress sealer exactly
// the way gateway.New does, so a follower materializes byte-identical
// state to what its own promotion would recover.
func newReadPlane(cfg Config, fol *followerCore, lg *slog.Logger) (*readPlane, error) {
	p := &readPlane{
		log: lg, fol: fol,
		newBackend: cfg.Gateway.NewBackend,
		qcap:       cfg.Gateway.QueryCache,
		tenants:    map[string]*readTenant{},
		conns:      map[net.Conn]struct{}{},
	}
	if key := cfg.Gateway.Key; len(key) > 0 {
		s, err := seal.NewSealer(key)
		if err != nil {
			return nil, fmt.Errorf("cluster: read plane: %w", err)
		}
		p.sealer = s
	}
	if p.newBackend == nil {
		if p.sealer == nil {
			return nil, fmt.Errorf("cluster: read plane: default ObliDB backend requires Gateway.Key")
		}
		key := cfg.Gateway.Key
		p.newBackend = func(string) (edb.Database, error) {
			return oblidb.NewWithKey(key)
		}
	}
	return p, nil
}

// serve runs one read-only session: ack the codec (downgrading unknown
// proposals to the compat codec, like the primary), then answer frames
// sequentially until the link dies or the plane shuts down. Runs on the
// per-connection goroutine the follower's accept loop spawned.
func (p *readPlane) serve(conn net.Conn, proposed byte) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = wire.WriteHelloRefused(conn)
		return
	}
	p.conns[conn] = struct{}{}
	p.wg.Add(1)
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
		p.wg.Done()
	}()

	codec := wire.Codec(proposed)
	if !codec.Valid() {
		codec = wire.CodecJSON
	}
	_ = conn.SetWriteDeadline(time.Now().Add(readPlaneWriteTimeout))
	if err := wire.WriteHelloAck(conn, codec); err != nil {
		return
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(readPlaneReadTimeout))
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, os.ErrDeadlineExceeded) {
				p.log.Debug("read-plane connection closed", "err", err)
			}
			return
		}
		greq, err := codec.DecodeGatewayRequest(payload)
		var resp wire.Response
		switch {
		case err != nil:
			resp = wire.Response{Error: err.Error()}
		case greq.Owner == "":
			resp = wire.Response{Error: "gateway: missing owner id"}
		default:
			resp = p.serveRequest(greq.Owner, greq.Req)
		}
		out, err := codec.EncodeGatewayResponse(wire.GatewayResponse{ID: greq.ID, Resp: resp})
		if err != nil {
			p.log.Warn("read-plane response encoding failed; severing", "err", err)
			return
		}
		_ = conn.SetWriteDeadline(time.Now().Add(readPlaneWriteTimeout))
		if err := wire.WriteFrame(conn, out); err != nil {
			return
		}
	}
}

// serveRequest answers one read-plane request. Syncs and resumes are
// refused with the typed not-primary error — this connection was
// negotiated read-only and this node holds no lease.
func (p *readPlane) serveRequest(owner string, req wire.Request) wire.Response {
	switch req.Type {
	case wire.MsgQuery, wire.MsgStats:
	default:
		return wire.Response{Error: wire.ErrNotPrimary.Error()}
	}
	p.queries.Add(1)
	if req.Type == wire.MsgQuery && req.Query == nil {
		return wire.Response{Error: "query missing"}
	}
	// cut is the atom: owner state and stream cursor from one frame
	// boundary of the tail loop. The freshness check runs against that
	// cursor whether or not the owner exists here — a client demanding
	// offsets this replica has not applied gets the typed refusal, never
	// an answer computed from less history than it asked for.
	st, cursor, ok := p.fol.cut(owner)
	if req.MinOffset > 0 && cursor < req.MinOffset {
		p.stale.Add(1)
		return wire.Response{Error: wire.ErrStale.Error(), Stale: &wire.StaleSpec{Offset: cursor}}
	}
	if !ok {
		// Mirror the primary's unknown-owner semantics: queries fail as an
		// un-setup database would; stats probes report the backend identity
		// from a throwaway instance without allocating tenant state.
		if req.Type == wire.MsgQuery {
			return wire.Response{Error: edb.ErrNotSetup.Error()}
		}
		db, err := p.newBackend(owner)
		if err != nil {
			return wire.Response{Error: fmt.Sprintf("cluster: read plane: backend for %q: %v", owner, err)}
		}
		return wire.NewStatsResponse(db.Stats(), db.Name(), int(db.Leakage()))
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return wire.Response{Error: "cluster: read plane shut down"}
	}
	tn := p.tenants[owner]
	if tn == nil || tn.clock != st.Clock {
		nt, err := p.materialize(&st)
		if err != nil {
			return wire.Response{Error: err.Error()}
		}
		tn = nt
		p.tenants[owner] = tn
	}
	switch req.Type {
	case wire.MsgStats:
		return wire.NewStatsResponse(tn.db.Stats(), tn.db.Name(), int(tn.db.Leakage()))
	default: // MsgQuery
		spec := *req.Query
		if tn.qc != nil {
			if resp, hit := tn.qc.Get(spec); hit {
				p.qcHits.Add(1)
				return resp
			}
			p.qcMiss.Add(1)
		}
		ans, cost, err := tn.db.Query(spec.ToQuery())
		if err != nil {
			return wire.Response{Error: err.Error()}
		}
		resp := wire.NewQueryResponse(ans, cost)
		if tn.qc != nil {
			tn.qc.Put(spec, resp)
		}
		return resp
	}
}

// materialize rebuilds one owner's read-only backend by streaming the
// replicated batch history — spilled runs straight off the replica's
// history segments, then the in-RAM tail — through the same ingest rules
// the gateway's recovery uses, at the committed clock the cut observed.
// The answer cache starts cold: a rebuild IS the invalidation.
func (p *readPlane) materialize(st *store.OwnerState) (*readTenant, error) {
	p.rebuilds.Add(1)
	db, err := p.newBackend(st.Owner)
	if err != nil {
		return nil, fmt.Errorf("cluster: read plane: backend for %q: %w", st.Owner, err)
	}
	tn := &readTenant{db: db, clock: st.Clock}
	if p.qcap >= 0 {
		tn.qc = qcache.New(p.qcap)
	}
	if si, isSealed := db.(sealedIngest); isSealed {
		tn.sealed = si
	} else if p.sealer == nil {
		return nil, fmt.Errorf("cluster: read plane: backend %q has no sealed-ingest path and no ingress key is configured", db.Name())
	}
	if err := p.fol.st.StreamHistory(st, func(bt store.Batch) error {
		cts := make([]seal.Sealed, len(bt.Sealed))
		for i, b := range bt.Sealed {
			cts[i] = seal.Sealed(b)
		}
		if tn.sealed != nil {
			if bt.Setup {
				return tn.sealed.SetupSealed(cts)
			}
			return tn.sealed.UpdateSealed(cts)
		}
		rs, err := p.sealer.OpenAll(cts)
		if err != nil {
			return err
		}
		if bt.Setup {
			return tn.db.Setup(rs)
		}
		return tn.db.Update(rs)
	}); err != nil {
		return nil, fmt.Errorf("cluster: read plane: rebuilding owner %q: %w", st.Owner, err)
	}
	return tn, nil
}

// Stats snapshots the plane's counters.
func (p *readPlane) Stats() ReadPlaneStats {
	return ReadPlaneStats{
		Queries:     p.queries.Load(),
		Stale:       p.stale.Load(),
		CacheHits:   p.qcHits.Load(),
		CacheMisses: p.qcMiss.Load(),
		Rebuilds:    p.rebuilds.Load(),
	}
}

// shutdown severs every read connection and drops the materialized
// tenants. Called before the follower seals (promotion, graceful close)
// or is killed — after it returns, no request can touch the store.
func (p *readPlane) shutdown() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for conn := range p.conns {
		conn.Close()
	}
	p.tenants = map[string]*readTenant{}
	p.mu.Unlock()
	p.wg.Wait()
}
