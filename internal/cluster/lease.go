package cluster

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Lease-based election. Exactly one node may hold the cluster lease at a
// time; the holder is the primary. The holder renews well before expiry;
// everyone else campaigns after expiry. Election is deliberately *not*
// consensus — the lease store (in-process for tests, a shared file for the
// CLI) is the single arbiter, standing in for the small coordination
// service (etcd, a managed lock) a production fleet would use. What the
// design guarantees is what failover needs: a node that cannot renew stops
// serving before anyone else can acquire (the TTL is the fencing window),
// and every decision is a pure function of (state, node, now) so tests can
// drive elections with an injected clock, deterministically.

// LeaseState is the arbiter's current view: who holds the lease, where that
// node serves, and when the claim lapses.
type LeaseState struct {
	Holder  string
	Addr    string
	Expires time.Time
}

// Lease is the election arbiter.
type Lease interface {
	// Acquire attempts to take (or, for the current holder, renew) the
	// lease. It returns the state after the attempt and whether node now
	// holds the lease.
	Acquire(node, addr string, ttl time.Duration) (LeaseState, bool, error)
	// State reads the current state without mutating it.
	State() (LeaseState, error)
	// Release drops the lease if node holds it, letting a graceful shutdown
	// hand over without waiting out the TTL.
	Release(node string) error
}

// grantable is the election decision, shared by every arbiter and pure so
// tests can pin it against a table: a lease is up for grabs when nobody
// holds it, when the claim has lapsed, or when the asker already holds it
// (renewal).
func grantable(st LeaseState, node string, now time.Time) bool {
	return st.Holder == "" || st.Holder == node || !now.Before(st.Expires)
}

// campaignStagger spaces nodes' campaign attempts apart deterministically —
// a pure function of the node ID, so two nodes discovering an expired lease
// in the same tick do not race the arbiter forever. The offset is bounded
// by a quarter TTL: late enough to order campaigns, early enough never to
// double the failover window.
func campaignStagger(node string, ttl time.Duration) time.Duration {
	if ttl <= 0 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(node))
	return time.Duration(uint64(ttl) / 4 * uint64(h.Sum32()%16) / 16)
}

// MemLease is the in-process arbiter: a mutex and an injectable clock. It
// is what the failover harness and the unit tests share a cluster through.
type MemLease struct {
	now func() time.Time
	mu  sync.Mutex
	st  LeaseState
}

// NewMemLease builds an in-process lease arbiter. now is the clock (nil:
// time.Now); tests inject a manual clock to drive elections tick by tick.
func NewMemLease(now func() time.Time) *MemLease {
	if now == nil {
		now = time.Now
	}
	return &MemLease{now: now}
}

// Acquire implements Lease.
func (l *MemLease) Acquire(node, addr string, ttl time.Duration) (LeaseState, bool, error) {
	if node == "" {
		return LeaseState{}, false, fmt.Errorf("cluster: empty node id")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	if !grantable(l.st, node, now) {
		return l.st, false, nil
	}
	l.st = LeaseState{Holder: node, Addr: addr, Expires: now.Add(ttl)}
	return l.st, true, nil
}

// State implements Lease.
func (l *MemLease) State() (LeaseState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st, nil
}

// Release implements Lease.
func (l *MemLease) Release(node string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.st.Holder == node {
		l.st = LeaseState{}
	}
	return nil
}

// leaseMagic is the first line of a lease file; versioned like every other
// on-disk format in the system.
const leaseMagic = "dpsync-lease v1"

// EncodeLease renders a lease state as the file format FileLease stores:
//
//	dpsync-lease v1
//	<holder>
//	<addr>
//	<expires unix nanoseconds>
//
// Line-oriented and human-readable on purpose — an operator inspecting a
// wedged cluster reads it with cat.
func EncodeLease(st LeaseState) []byte {
	// A zero Expires encodes as literal 0 — the zero time.Time's UnixNano is
	// a garbage negative number that a released lease must not carry.
	var ns int64
	if !st.Expires.IsZero() {
		ns = st.Expires.UnixNano()
	}
	return []byte(fmt.Sprintf("%s\n%s\n%s\n%d\n", leaseMagic, st.Holder, st.Addr, ns))
}

// ParseLease parses a lease file image. Malformed input — wrong magic,
// missing lines, a node id or address with framing bytes in it, a
// non-numeric expiry — is rejected; it never panics, whatever the bytes
// claim (the file sits on shared storage, so it is fuzz-pinned like every
// other codec in the system).
func ParseLease(data []byte) (LeaseState, error) {
	s := string(data)
	lines := strings.Split(s, "\n")
	if len(lines) < 4 || lines[0] != leaseMagic {
		return LeaseState{}, fmt.Errorf("cluster: malformed lease file (bad magic or missing lines)")
	}
	for _, extra := range lines[4:] {
		if extra != "" {
			return LeaseState{}, fmt.Errorf("cluster: trailing bytes after lease")
		}
	}
	holder, addr := lines[1], lines[2]
	if strings.ContainsAny(holder, "\r") || strings.ContainsAny(addr, "\r") {
		return LeaseState{}, fmt.Errorf("cluster: carriage return in lease field")
	}
	if holder == "" && (addr != "" || lines[3] != "0") {
		return LeaseState{}, fmt.Errorf("cluster: released lease with residual fields")
	}
	if len(holder) > 255 || len(addr) > 255 {
		return LeaseState{}, fmt.Errorf("cluster: lease field exceeds 255 bytes")
	}
	ns, err := strconv.ParseInt(lines[3], 10, 64)
	if err != nil {
		return LeaseState{}, fmt.Errorf("cluster: lease expiry: %v", err)
	}
	st := LeaseState{Holder: holder, Addr: addr}
	if ns != 0 || holder != "" {
		st.Expires = time.Unix(0, ns)
	}
	return st, nil
}

// FileLease is the shared-file arbiter for cmd/dpsync-server: nodes on one
// machine (or one shared filesystem) elect through an atomically-renamed
// lease file. Rename-last-wins means two simultaneous campaigns can both
// believe they won for one write cycle; the deterministic campaign stagger
// makes that window practically unreachable, and the TTL bounds the damage
// — this is the operational stand-in, not a consensus protocol (the
// arbiter seam is Lease; a real fleet plugs a coordination service in).
type FileLease struct {
	path string
	now  func() time.Time
	mu   sync.Mutex
}

// NewFileLease builds a file-backed arbiter at path. now is the clock (nil:
// time.Now).
func NewFileLease(path string, now func() time.Time) *FileLease {
	if now == nil {
		now = time.Now
	}
	return &FileLease{path: path, now: now}
}

// read loads the current state; a missing file is an empty (grantable)
// lease, a malformed one is an error (never silently treated as free — an
// operator must look before two primaries can).
func (l *FileLease) read() (LeaseState, error) {
	data, err := os.ReadFile(l.path)
	if os.IsNotExist(err) {
		return LeaseState{}, nil
	}
	if err != nil {
		return LeaseState{}, fmt.Errorf("cluster: reading lease: %w", err)
	}
	return ParseLease(data)
}

// write persists st via tmp+rename so readers only ever see whole files.
func (l *FileLease) write(st LeaseState) error {
	tmp := l.path + ".tmp"
	if err := os.WriteFile(tmp, EncodeLease(st), 0o644); err != nil {
		return fmt.Errorf("cluster: writing lease: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: writing lease: %w", err)
	}
	return nil
}

// Acquire implements Lease.
func (l *FileLease) Acquire(node, addr string, ttl time.Duration) (LeaseState, bool, error) {
	if node == "" {
		return LeaseState{}, false, fmt.Errorf("cluster: empty node id")
	}
	if strings.ContainsAny(node+addr, "\n\r") {
		return LeaseState{}, false, fmt.Errorf("cluster: newline in node id or address")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st, err := l.read()
	if err != nil {
		return LeaseState{}, false, err
	}
	now := l.now()
	if !grantable(st, node, now) {
		return st, false, nil
	}
	st = LeaseState{Holder: node, Addr: addr, Expires: now.Add(ttl)}
	if err := l.write(st); err != nil {
		return LeaseState{}, false, err
	}
	return st, true, nil
}

// State implements Lease.
func (l *FileLease) State() (LeaseState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.read()
}

// Release implements Lease.
func (l *FileLease) Release(node string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, err := l.read()
	if err != nil {
		return err
	}
	if st.Holder != node {
		return nil
	}
	return l.write(LeaseState{})
}

// LeasePathInDir is a convenience for colocating the lease with a store
// directory tree (cmd/dpsync-server's -cluster mode default).
func LeasePathInDir(dir string) string { return filepath.Join(dir, "cluster.lease") }
