package cluster

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// manualClock is a settable clock for driving elections deterministically.
type manualClock struct{ t time.Time }

func (c *manualClock) now() time.Time          { return c.t }
func (c *manualClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestGrantable(t *testing.T) {
	base := time.Unix(1000, 0)
	cases := []struct {
		name string
		st   LeaseState
		node string
		now  time.Time
		want bool
	}{
		{"empty lease", LeaseState{}, "a", base, true},
		{"holder renews", LeaseState{Holder: "a", Expires: base.Add(time.Second)}, "a", base, true},
		{"other node, live lease", LeaseState{Holder: "a", Expires: base.Add(time.Second)}, "b", base, false},
		{"other node, at expiry", LeaseState{Holder: "a", Expires: base}, "b", base, true},
		{"other node, past expiry", LeaseState{Holder: "a", Expires: base}, "b", base.Add(time.Nanosecond), true},
		{"holder renews past expiry", LeaseState{Holder: "a", Expires: base}, "a", base.Add(time.Hour), true},
	}
	for _, c := range cases {
		if got := grantable(c.st, c.node, c.now); got != c.want {
			t.Errorf("%s: grantable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCampaignStagger(t *testing.T) {
	const ttl = 4 * time.Second
	a := campaignStagger("node-a", ttl)
	if a != campaignStagger("node-a", ttl) {
		t.Fatal("stagger is not deterministic")
	}
	if a < 0 || a > ttl/4 {
		t.Fatalf("stagger %v outside [0, ttl/4]", a)
	}
	if campaignStagger("", 0) != 0 {
		t.Fatal("zero ttl must not stagger")
	}
	// Not a strict requirement (hash collisions exist), but these IDs are
	// pinned to land in different buckets — a regression here means the hash
	// no longer spreads campaigns at all.
	if campaignStagger("node-a", ttl) == campaignStagger("node-b", ttl) &&
		campaignStagger("node-a", ttl) == campaignStagger("node-c", ttl) {
		t.Fatal("stagger does not separate distinct node IDs")
	}
}

// TestMemLeaseElection drives a full election cycle on an injected clock:
// grant, denial, renewal, expiry takeover, fencing of the old holder, and
// graceful release.
func TestMemLeaseElection(t *testing.T) {
	clk := &manualClock{t: time.Unix(5000, 0)}
	l := NewMemLease(clk.now)
	const ttl = time.Second

	st, won, err := l.Acquire("a", "addr-a", ttl)
	if err != nil || !won || st.Holder != "a" || st.Addr != "addr-a" {
		t.Fatalf("initial acquire: st=%+v won=%v err=%v", st, won, err)
	}
	if st, won, _ := l.Acquire("b", "addr-b", ttl); won || st.Holder != "a" {
		t.Fatalf("b acquired against a live lease: %+v", st)
	}

	clk.advance(ttl / 2)
	if _, won, _ := l.Acquire("a", "addr-a", ttl); !won {
		t.Fatal("holder renewal refused")
	}
	// The renewal extended the claim: b remains locked out at the original expiry.
	clk.advance(ttl/2 + 100*time.Millisecond)
	if _, won, _ := l.Acquire("b", "addr-b", ttl); won {
		t.Fatal("b acquired inside the renewed ttl")
	}

	clk.advance(ttl)
	st, won, _ = l.Acquire("b", "addr-b", ttl)
	if !won || st.Holder != "b" {
		t.Fatalf("b could not take the lapsed lease: %+v", st)
	}
	// The old holder is fenced now.
	if st, won, _ := l.Acquire("a", "addr-a", ttl); won || st.Holder != "b" {
		t.Fatalf("a re-acquired against b's live lease: %+v", st)
	}

	if err := l.Release("a"); err != nil { // non-holder release is a no-op
		t.Fatal(err)
	}
	if st, _ := l.State(); st.Holder != "b" {
		t.Fatalf("non-holder release cleared the lease: %+v", st)
	}
	if err := l.Release("b"); err != nil {
		t.Fatal(err)
	}
	if _, won, _ := l.Acquire("a", "addr-a", ttl); !won {
		t.Fatal("a could not acquire after graceful release")
	}

	if _, _, err := l.Acquire("", "x", ttl); err == nil {
		t.Fatal("empty node id accepted")
	}
}

// TestFileLease exercises the shared-file arbiter end to end, including the
// release → re-acquire cycle (a released lease file must stay parseable).
func TestFileLease(t *testing.T) {
	clk := &manualClock{t: time.Unix(9000, 0)}
	path := filepath.Join(t.TempDir(), "cluster.lease")
	l := NewFileLease(path, clk.now)
	const ttl = time.Second

	// Missing file is an empty, grantable lease.
	if st, err := l.State(); err != nil || st.Holder != "" {
		t.Fatalf("missing file: st=%+v err=%v", st, err)
	}
	if _, won, err := l.Acquire("a", "127.0.0.1:7001", ttl); err != nil || !won {
		t.Fatalf("acquire: won=%v err=%v", won, err)
	}
	// A second arbiter over the same path sees the claim.
	l2 := NewFileLease(path, clk.now)
	if st, won, _ := l2.Acquire("b", "127.0.0.1:7002", ttl); won || st.Holder != "a" {
		t.Fatalf("b acquired through a second arbiter: %+v", st)
	}

	// Graceful release, then re-acquire through the other arbiter: the
	// released file must parse as an empty lease, not as corruption.
	if err := l.Release("a"); err != nil {
		t.Fatal(err)
	}
	if st, err := l2.State(); err != nil || st.Holder != "" {
		t.Fatalf("released lease file unreadable: st=%+v err=%v", st, err)
	}
	if _, won, err := l2.Acquire("b", "127.0.0.1:7002", ttl); err != nil || !won {
		t.Fatalf("b could not acquire after release: won=%v err=%v", won, err)
	}

	// Expiry takeover with the shared clock.
	clk.advance(2 * ttl)
	if _, won, err := l.Acquire("a", "127.0.0.1:7001", ttl); err != nil || !won {
		t.Fatalf("a could not take the lapsed lease: won=%v err=%v", won, err)
	}

	// Framing bytes in identity fields never reach the file.
	if _, _, err := l.Acquire("evil\nnode", "x", ttl); err == nil {
		t.Fatal("newline in node id accepted")
	}
}

func TestFileLeaseMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.lease")
	if err := os.WriteFile(path, []byte("not a lease\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewFileLease(path, nil)
	if _, err := l.State(); err == nil {
		t.Fatal("malformed lease file read as valid state")
	}
	// Malformed is never silently treated as free: acquire must refuse too.
	if _, _, err := l.Acquire("a", "x", time.Second); err == nil {
		t.Fatal("acquired over a malformed lease file")
	}
}

func TestParseLease(t *testing.T) {
	exp := time.Unix(0, 1234567890)
	valid := EncodeLease(LeaseState{Holder: "n1", Addr: "127.0.0.1:7001", Expires: exp})
	st, err := ParseLease(valid)
	if err != nil {
		t.Fatal(err)
	}
	if st.Holder != "n1" || st.Addr != "127.0.0.1:7001" || !st.Expires.Equal(exp) {
		t.Fatalf("round trip mismatch: %+v", st)
	}
	// Released lease round-trips as the zero state.
	st, err = ParseLease(EncodeLease(LeaseState{}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Holder != "" || st.Addr != "" || !st.Expires.IsZero() {
		t.Fatalf("released lease round trip: %+v", st)
	}

	bad := [][]byte{
		nil,
		[]byte(""),
		[]byte("dpsync-lease v2\nn\na\n1\n"),
		[]byte("dpsync-lease v1\nn\na\n"),       // missing expiry line
		[]byte("dpsync-lease v1\nn\na\nnope\n"), // non-numeric expiry
		[]byte("dpsync-lease v1\nn\na\n1\ntrailing\n"), // bytes after the lease
		[]byte("dpsync-lease v1\nn\r\na\n1\n"),         // CR in a field
		[]byte("dpsync-lease v1\n\naddr\n0\n"),         // released but residual addr
		[]byte("dpsync-lease v1\n\n\n7\n"),             // released but residual expiry
		append([]byte("dpsync-lease v1\n"), append(bytes.Repeat([]byte("x"), 300), []byte("\na\n1\n")...)...),
	}
	for i, b := range bad {
		if _, err := ParseLease(b); err == nil {
			t.Errorf("malformed input %d accepted: %q", i, b)
		}
	}
}

// FuzzLeaseFile pins the lease file codec: ParseLease never panics, and any
// accepted image re-encodes to an image that parses back to the same state —
// so a lease written by one node is never misread by another.
func FuzzLeaseFile(f *testing.F) {
	f.Add(EncodeLease(LeaseState{Holder: "node-a", Addr: "127.0.0.1:7001", Expires: time.Unix(0, 1700000000000000000)}))
	f.Add(EncodeLease(LeaseState{}))
	f.Add([]byte("dpsync-lease v1\nn1\naddr\n-5\n"))
	f.Add([]byte("dpsync-lease v1\nn1\naddr\n1\n\n\n"))
	f.Add([]byte("dpsync-lease v2\nn1\naddr\n1\n"))
	f.Add([]byte("dpsync-lease v1\nn\r1\naddr\n1\n"))
	f.Add([]byte("dpsync-lease v1\n\n\n0\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ParseLease(data)
		if err != nil {
			return
		}
		st2, err := ParseLease(EncodeLease(st))
		if err != nil {
			t.Fatalf("re-encoded accepted lease rejected: %v (state %+v)", err, st)
		}
		if st2.Holder != st.Holder || st2.Addr != st.Addr || !st2.Expires.Equal(st.Expires) {
			t.Fatalf("lease state changed across re-encode: %+v != %+v", st2, st)
		}
	})
}
