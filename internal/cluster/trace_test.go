package cluster_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"dpsync/internal/client"
	"dpsync/internal/cluster"
	"dpsync/internal/gateway"
	"dpsync/internal/record"
	"dpsync/internal/seal"
	"dpsync/internal/telemetry"
)

// startTracedNode is startNode with a per-node tracer attached and an
// optional pinned-standby target, for the tracing/readiness tests.
func startTracedNode(t *testing.T, id string, lease cluster.Lease, key []byte, tracer *telemetry.Tracer, replicaOf string, dialer func(string) (net.Conn, error)) *cluster.Node {
	t.Helper()
	n, err := cluster.Start(cluster.Config{
		Addr:     "127.0.0.1:0",
		NodeID:   id,
		StoreDir: t.TempDir(),
		Gateway: gateway.Config{
			Key: key, Shards: 2,
			SnapshotEvery: 16, HistoryWindow: 8,
			SyncEpsilon: failoverSyncEps,
			Tracer:      tracer,
		},
		Lease:     lease,
		LeaseTTL:  failoverTTL,
		Heartbeat: 20 * time.Millisecond,
		RingSize:  64,
		ReplicaOf: replicaOf,
		Dialer:    dialer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func waitReady(t *testing.T, n *cluster.Node, want bool, within time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		ok, reason := n.Ready()
		if ok == want {
			return reason
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s readiness stuck at %v (%s), want %v", n.Addr(), ok, reason, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPrimaryUnreadyOnCommitLatch pins the /healthz flip on the primary
// side: a failed group commit latches the store unhealthy, and the node
// stops advertising ready even though it still holds the lease.
func TestPrimaryUnreadyOnCommitLatch(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	a := startTracedNode(t, "node-a", cluster.NewMemLease(nil), key, nil, "", nil)
	if ok, reason := a.Ready(); !ok {
		t.Fatalf("fresh primary unready: %s", reason)
	}

	conn, err := client.DialGateway(a.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	own := conn.Owner("owner-latch")
	if err := own.Setup([]record.Record{yellow(0, 1)}); err != nil {
		t.Fatal(err)
	}

	a.Gateway().Store().SetCommitFailpoint(true)
	// The failed sync surfaces as a client error AND latches Healthy false.
	if err := own.Update([]record.Record{yellow(1, 2)}); err == nil {
		t.Fatal("update succeeded through a failing WAL commit")
	}
	reason := waitReady(t, a, false, 2*time.Second)
	if !strings.Contains(reason, "commit error") {
		t.Fatalf("unready reason = %q, want a WAL commit-error reason", reason)
	}

	// The latch is one-way: clearing the failpoint does not un-suspend the
	// affected tenants, so readiness must stay down until a restart.
	a.Gateway().Store().SetCommitFailpoint(false)
	if ok, reason := a.Ready(); ok {
		t.Fatalf("readiness un-latched without a restart: %s", reason)
	}
	if st := a.StatusText(); !strings.Contains(st, "store: UNHEALTHY") {
		t.Fatalf("statusz does not surface the latch:\n%s", st)
	}
}

// TestFollowerReadinessTracksPrimaryContact pins the /healthz flip on the
// follower side, both directions: a pinned standby is unready before its
// first primary contact, ready while heartbeats arrive, and unready again
// once the primary has been silent past the staleness bound.
func TestFollowerReadinessTracksPrimaryContact(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	a := startTracedNode(t, "node-a", cluster.NewMemLease(nil), key, nil, "", nil)

	// The standby's dial is gated: until released it provably has had no
	// primary contact, making the before-contact assertion deterministic.
	gate := make(chan struct{})
	dialer := func(addr string) (net.Conn, error) {
		<-gate
		return net.Dial("tcp", addr)
	}
	b := startTracedNode(t, "node-b", nil, key, nil, a.Addr(), dialer)
	if ok, reason := b.Ready(); ok || !strings.Contains(reason, "no primary contact") {
		t.Fatalf("gated standby Ready = %v (%s), want unready before contact", ok, reason)
	}

	close(gate)
	reason := waitReady(t, b, true, 5*time.Second)
	if !strings.Contains(reason, "replicating") {
		t.Fatalf("ready reason = %q", reason)
	}

	// Kill the primary: heartbeats stop, and once the silence crosses the
	// bound (max(6×heartbeat, 1s)) the standby must flip unready.
	a.Kill()
	reason = waitReady(t, b, false, 5*time.Second)
	if !strings.Contains(reason, "silent") && !strings.Contains(reason, "not replicating") {
		t.Fatalf("post-kill unready reason = %q", reason)
	}
}

// TestClusterTraceSpanTree is the tracing acceptance test: with every
// request sampled, one durable clustered sync must yield a complete,
// correctly parented span tree — client-admit at the root; queue-wait,
// apply, and the WAL flush under it; the entry's wal-commit under the
// flush; the replication ship under the commit — and, on the follower, an
// apply fragment that joined the same trace via the context the replication
// codec propagated, parented to the ship span.
func TestClusterTraceSpanTree(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	lease := cluster.NewMemLease(nil)
	trA := telemetry.NewTracer(telemetry.TracerConfig{SampleEvery: 1})
	trB := telemetry.NewTracer(telemetry.TracerConfig{SampleEvery: 1})
	a := startTracedNode(t, "node-a", lease, key, trA, "", nil)
	b := startTracedNode(t, "node-b", lease, key, trB, "", nil)

	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Hub.Followers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never connected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	conn, err := client.DialGateway(a.Addr(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	own := conn.Owner("owner-traced")
	if err := own.Setup([]record.Record{yellow(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := own.Update([]record.Record{yellow(1, 2)}); err != nil {
		t.Fatal(err)
	}
	for b.Stats().Follower.Applied < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %+v", b.Stats().Follower)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The ship span is completed by the sender after its flush, and the
	// follower publishes its fragment on its own clock — poll until a trace
	// on the primary carries a finished repl-ship span whose trace ID also
	// has a follower fragment.
	var full telemetry.TraceSnap
	var frag telemetry.SpanSnap
	for {
		full, frag = findShippedTrace(trA.Dump(), trB.Dump())
		if full.TraceID != "" || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if full.TraceID == "" {
		t.Fatalf("no trace with a shipped span tree and follower fragment\nprimary: %+v\nfollower: %+v",
			trA.Dump(), trB.Dump())
	}

	span := map[string]telemetry.SpanSnap{}
	for _, s := range full.Spans {
		span[s.Name] = s
	}
	root := span["client-admit"]
	if root.ID != 1 || root.Parent != 0 || root.DurUs < 0 {
		t.Fatalf("root span malformed: %+v", root)
	}
	for _, name := range []string{"queue-wait", "apply", "wal-flush"} {
		if s, ok := span[name]; !ok || s.Parent != root.ID {
			t.Errorf("%s parent = %+v, want child of client-admit", name, span[name])
		}
	}
	commit, ok := span["wal-commit"]
	if !ok || commit.Parent != span["wal-flush"].ID {
		t.Errorf("wal-commit = %+v, want child of wal-flush %d", commit, span["wal-flush"].ID)
	}
	ship, ok := span["repl-ship"]
	if !ok || ship.Parent != commit.ID || ship.DurUs < 0 {
		t.Errorf("repl-ship = %+v, want finished child of wal-commit %d", ship, commit.ID)
	}
	if frag.Name != "follower-apply" || frag.Parent != ship.ID {
		t.Errorf("follower fragment = %+v, want follower-apply parented to ship span %d", frag, ship.ID)
	}
}

// findShippedTrace scans the primary's recent traces for one carrying the
// complete durable span set with a finished repl-ship span, joined by a
// fragment in the follower's dump; it returns zero values until both halves
// have landed.
func findShippedTrace(primary, follower telemetry.TraceDump) (telemetry.TraceSnap, telemetry.SpanSnap) {
	for _, tr := range primary.Recent {
		if tr.Fragment {
			continue
		}
		names := map[string]bool{}
		shipDone := false
		var shipID uint32
		for _, s := range tr.Spans {
			names[s.Name] = true
			if s.Name == "repl-ship" && s.DurUs >= 0 {
				shipDone = true
				shipID = s.ID
			}
		}
		if !shipDone || !names["queue-wait"] || !names["apply"] || !names["wal-flush"] || !names["wal-commit"] {
			continue
		}
		for _, fr := range follower.Recent {
			if !fr.Fragment || fr.TraceID != tr.TraceID {
				continue
			}
			for _, s := range fr.Spans {
				if s.Name == "follower-apply" && s.Parent == shipID {
					return tr, s
				}
			}
		}
	}
	return telemetry.TraceSnap{}, telemetry.SpanSnap{}
}
