// Package cluster replicates the multi-tenant DP-Sync gateway across
// nodes: a primary serves clients and streams every shard's committed WAL
// entries to followers; a lease-based election keeps exactly one primary;
// on primary loss a follower seals its replicated prefix and takes over the
// fleet, with the PR 6 resume protocol letting reconnecting clients
// discover the promoted node's durable clock and replay the difference.
//
// # Roles
//
// A Node is either the primary or a follower, never both:
//
//   - The primary runs the full gateway (internal/gateway) with a
//     replication Hub tapped into its durable commit stream. Every
//     committed sync entry ships to connected followers in commit order,
//     tagged with a per-shard stream offset equal to the shard's committed
//     entry count.
//   - A follower serves nobody: its listener answers every hello — client
//     and replication alike — with a typed refusal (wire.ErrNotPrimary), so
//     a client that dials it moves on to the next address instead of
//     hanging. Meanwhile it tails the primary and folds the shipped
//     entries into its own store through the recovery rules, so its
//     directory is at every instant a valid restart image.
//
// # Failover invariant
//
// Promotion is recovery: the follower seals its replicated prefix (drains
// its WAL appends and closes its store) and runs gateway.New over its own
// directory on the listener it was refusing clients on. Everything the
// promoted node serves is therefore exactly what crash recovery could
// prove — a committed prefix of every owner's history, with transcript,
// clock, and ε ledger describing precisely that prefix. Syncs the old
// primary committed but never shipped are not lost: the owner's client
// still holds them (its resync window), discovers the promoted node's
// lower durable clock through the resume protocol, and re-uploads them
// verbatim, so every owner's transcript and ε ledger end bit-identical to
// an uninterrupted run. The differential test in this package pins that
// across randomized kill points, churn, and link faults.
//
// # Election
//
// The lease arbiter (Lease) grants one holder at a time; the primary
// renews at a third of the TTL and fences itself — kills its gateway — the
// moment a renewal is refused, before the arbiter would let anyone else
// acquire. A graceful Close releases the lease so the next election needs
// no timeout. Elections are deterministic and clock-injectable: the grant
// rule is a pure function of (state, node, now), and campaign timing is
// staggered by a hash of the node ID.
package cluster

import (
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"strings"
	"sync"
	"time"

	"dpsync/internal/gateway"
	"dpsync/internal/telemetry"
	"dpsync/internal/wire"
)

// Role is a node's current cluster role.
type Role int

const (
	RoleFollower Role = iota
	RolePrimary
)

func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "follower"
}

const (
	// DefaultLeaseTTL is the election lease duration — the failover fencing
	// window. Production wants seconds; the failover tests run fractions.
	DefaultLeaseTTL = 3 * time.Second
	// refusePollInterval is the follower accept-loop's deadline, which is
	// what bounds how long promotion waits to reclaim the listener.
	refusePollInterval = 50 * time.Millisecond
	// dialTimeout bounds one replication dial attempt.
	dialTimeout = 3 * time.Second
)

// Config assembles a Node.
type Config struct {
	// Addr is the node's listen address (clients and replication share it);
	// port 0 picks a free port. The listener must be TCP — promotion hands
	// it from the refusal loop to the gateway via deadline wakeups.
	Addr string
	// NodeID names this node to the lease arbiter and the primary. Required.
	NodeID string
	// StoreDir is this node's private durability directory. Required —
	// replication ships WAL frames, so every role needs a WAL.
	StoreDir string
	// Gateway is the serving configuration the node uses while primary
	// (key, shards, epsilon, window, timeouts...). StoreDir, Listener, and
	// Replicator are owned by the node and overwritten.
	Gateway gateway.Config
	// Lease is the election arbiter, shared by the cluster's nodes.
	// Required unless ReplicaOf pins this node to standby.
	Lease Lease
	// LeaseTTL is the lease duration (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// ReplicaOf pins the node to a permanent standby tailing this address:
	// it never campaigns and never promotes (cmd/dpsync-server -replica-of).
	ReplicaOf string
	// Dialer opens replication connections to the primary (nil = TCP with
	// a bounded timeout). The fault-injection harness wraps it.
	Dialer func(addr string) (net.Conn, error)
	// Heartbeat is the replication idle heartbeat (0 = DefaultHeartbeat);
	// the follower's link-death deadline derives from it.
	Heartbeat time.Duration
	// RingSize is the primary's per-shard catch-up ring (0 = DefaultRingSize).
	RingSize int
	// Logger receives role transitions and diagnostics; nil discards.
	Logger *slog.Logger
	// Telemetry receives the node's cluster metrics (role, lease renewals and
	// losses, fence/promotion events) and is threaded into the hub and — when
	// Gateway.Telemetry is unset — the serving gateway. Nil disables export.
	Telemetry *telemetry.Registry
}

// Node is one cluster member. Create with Start; stop with Close (graceful)
// or Kill (crash).
type Node struct {
	cfg  Config
	log  *slog.Logger
	lis  net.Listener
	quit chan struct{}
	wg   sync.WaitGroup
	tm   nodeMetrics

	mu       sync.Mutex
	role     Role
	gw       *gateway.Gateway
	hub      *Hub
	fol      *followerCore
	plane    *readPlane
	tailConn net.Conn
	lastFol  FollowerStats
	lastRead ReadPlaneStats
	closed   bool
	killed   bool
	// leaseHolder/leaseRenewed mirror the node's last view of the arbiter:
	// who holds the lease, and when this node last renewed its own (zero
	// while following). Status and telemetry read them under mu.
	leaseHolder  string
	leaseRenewed time.Time

	promoted     chan struct{}
	promotedOnce sync.Once
}

// nodeMetrics holds the node's telemetry handles; zero value no-ops.
type nodeMetrics struct {
	renewals   *telemetry.Counter
	losses     *telemetry.Counter
	promotions *telemetry.Counter
	unreg      func()
}

// NodeStats snapshots a node's replication counters for metrics reporting.
type NodeStats struct {
	Role Role
	// Follower carries the replica-side counters (the last sealed values
	// once the node has promoted).
	Follower FollowerStats
	// Hub carries the primary-side counters (zero while following).
	Hub HubStats
	// ReadPlane carries the follower read-plane counters (the last values
	// before shutdown once the node has promoted or closed).
	ReadPlane ReadPlaneStats
}

// Start brings a node up: it binds the address, then either takes the lease
// and serves as primary, or opens its replica image and follows.
func Start(cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: NodeID required")
	}
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("cluster: StoreDir required")
	}
	if cfg.Lease == nil && cfg.ReplicaOf == "" {
		return nil, fmt.Errorf("cluster: Lease required (or pin the node with ReplicaOf)")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.Dialer == nil {
		cfg.Dialer = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, dialTimeout)
		}
	}
	n := &Node{cfg: cfg, quit: make(chan struct{}), promoted: make(chan struct{})}
	if cfg.Logger != nil {
		n.log = cfg.Logger
	} else {
		n.log = telemetry.Discard()
	}
	if reg := cfg.Telemetry; reg != nil {
		n.tm = nodeMetrics{
			renewals: reg.Counter("cluster_lease_renewals_total", "successful lease acquisitions/renewals by this node"),
			losses: reg.Counter("cluster_lease_losses_total",
				"refused renewals — each one fences the local gateway"),
			promotions: reg.Counter("cluster_promotions_total", "follower-to-primary promotions"),
		}
		n.tm.unreg = reg.RegisterCollector(func(emit func(telemetry.Sample)) {
			n.mu.Lock()
			role, holder, renewed := n.role, n.leaseHolder, n.leaseRenewed
			fol, last := n.fol, n.lastFol
			plane, lastRead := n.plane, n.lastRead
			n.mu.Unlock()
			var isPrimary, held float64
			if role == RolePrimary {
				isPrimary = 1
			}
			if holder == cfg.NodeID && !renewed.IsZero() {
				held = 1
			}
			emit(telemetry.Sample{Name: "cluster_role", Help: "1 while this node serves as primary",
				Kind: telemetry.KindGauge, Value: isPrimary})
			emit(telemetry.Sample{Name: "cluster_lease_held", Help: "1 while this node holds the lease",
				Kind: telemetry.KindGauge, Value: held})
			fst := last
			if fol != nil {
				fst = fol.Stats()
				if lc := fol.lastContact.Load(); lc != 0 {
					emit(telemetry.Sample{Name: "cluster_repl_last_contact_ms",
						Help: "milliseconds since the last frame from the primary",
						Kind: telemetry.KindGauge, Value: float64(time.Now().UnixNano()-lc) / 1e6})
				}
			}
			emit(telemetry.Sample{Name: "cluster_repl_applied_total", Help: "live stream entries folded by this replica",
				Kind: telemetry.KindCounter, Value: float64(fst.Applied)})
			emit(telemetry.Sample{Name: "cluster_repl_snapshot_transfers_total", Help: "snapshot transfers applied by this replica",
				Kind: telemetry.KindCounter, Value: float64(fst.Snapshots)})
			rst := lastRead
			if plane != nil {
				rst = plane.Stats()
			}
			emit(telemetry.Sample{Name: "cluster_read_queries_total",
				Help: "read requests served by the follower read plane (refusals included)",
				Kind: telemetry.KindCounter, Value: float64(rst.Queries)})
			emit(telemetry.Sample{Name: "cluster_read_stale_total",
				Help: "typed freshness refusals (replica cursor below the query's MinOffset)",
				Kind: telemetry.KindCounter, Value: float64(rst.Stale)})
			emit(telemetry.Sample{Name: "cluster_read_qcache_hits_total",
				Help: "replica queries served from the noise-reuse answer cache",
				Kind: telemetry.KindCounter, Value: float64(rst.CacheHits)})
			emit(telemetry.Sample{Name: "cluster_read_qcache_misses_total",
				Help: "replica queries evaluated against the materialized backend",
				Kind: telemetry.KindCounter, Value: float64(rst.CacheMisses)})
			emit(telemetry.Sample{Name: "cluster_read_rebuilds_total",
				Help: "read-plane backend materializations (first read, or replicated clock advanced)",
				Kind: telemetry.KindCounter, Value: float64(rst.Rebuilds)})
		})
	}
	lis, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if n.tm.unreg != nil {
			n.tm.unreg()
		}
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	n.lis = lis

	if cfg.ReplicaOf == "" {
		if st, won, err := cfg.Lease.Acquire(cfg.NodeID, n.Addr(), cfg.LeaseTTL); err != nil {
			lis.Close()
			if n.tm.unreg != nil {
				n.tm.unreg()
			}
			return nil, err
		} else if won {
			n.recordLease(cfg.NodeID, true)
			if err := n.startPrimary(); err != nil {
				_ = cfg.Lease.Release(cfg.NodeID)
				lis.Close()
				if n.tm.unreg != nil {
					n.tm.unreg()
				}
				return nil, err
			}
			return n, nil
		} else {
			n.recordLease(st.Holder, false)
		}
	}
	fol, err := openFollower(cfg.StoreDir, n.shardCount(), cfg.Gateway.HistoryWindow, n.snapEvery(), cfg.Gateway.Fsync, n.log.With("node", cfg.NodeID), cfg.Gateway.Tracer)
	if err != nil {
		lis.Close()
		return nil, err
	}
	n.fol = fol
	// The follower read plane serves "DPSQ" connections from the replica.
	// A config the serving gateway could not materialize (no key, no
	// backend) degrades to the old refuse-everything follower rather than
	// failing the node — promotion would surface the same problem louder.
	if plane, perr := newReadPlane(cfg, fol, n.log.With("node", cfg.NodeID)); perr != nil {
		n.log.Warn("read plane disabled", "node", cfg.NodeID, "err", perr)
	} else {
		n.plane = plane
	}
	n.wg.Add(1)
	go n.runFollower()
	return n, nil
}

// recordLease notes the arbiter's verdict: who holds the lease, and (when
// this node won) a renewals tick and a fresh renewal timestamp.
func (n *Node) recordLease(holder string, won bool) {
	n.mu.Lock()
	n.leaseHolder = holder
	if won {
		n.leaseRenewed = time.Now()
	}
	n.mu.Unlock()
	if won {
		n.tm.renewals.Inc()
	}
}

// shardCount resolves the shard-worker count the same way gateway.New does,
// so the replica's store layout matches what promotion will recover.
func (n *Node) shardCount() int {
	if n.cfg.Gateway.Shards > 0 {
		return n.cfg.Gateway.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (n *Node) snapEvery() int {
	if n.cfg.Gateway.SnapshotEvery > 0 {
		return n.cfg.Gateway.SnapshotEvery
	}
	return gateway.DefaultSnapshotEvery
}

// Addr returns the node's bound listen address.
func (n *Node) Addr() string { return n.lis.Addr().String() }

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Gateway returns the serving gateway while the node is primary, nil while
// it follows.
func (n *Node) Gateway() *gateway.Gateway {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.gw
}

// Promoted is closed when this node becomes primary (at Start or by
// failover) — what harnesses block on to time a failover.
func (n *Node) Promoted() <-chan struct{} { return n.promoted }

// Stats snapshots the node's replication counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	role, fol, hub, last := n.role, n.fol, n.hub, n.lastFol
	plane, lastRead := n.plane, n.lastRead
	n.mu.Unlock()
	st := NodeStats{Role: role, Follower: last, ReadPlane: lastRead}
	if fol != nil {
		st.Follower = fol.Stats()
	}
	if plane != nil {
		st.ReadPlane = plane.Stats()
	}
	if hub != nil {
		st.Hub = hub.Stats()
	}
	return st
}

// StatusText implements telemetry.Status: the /statusz body — role, lease
// view, and per-shard durable progress (WAL depth and committed offsets on a
// primary, follower cursors via the hub; replication counters on a replica).
func (n *Node) StatusText() string {
	n.mu.Lock()
	role, holder, renewed := n.role, n.leaseHolder, n.leaseRenewed
	gw, hub, fol, last := n.gw, n.hub, n.fol, n.lastFol
	plane, lastRead := n.plane, n.lastRead
	n.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "node: %s\nrole: %s\naddr: %s\n", n.cfg.NodeID, role, n.Addr())
	fmt.Fprintf(&b, "lease holder: %s", holder)
	if !renewed.IsZero() {
		fmt.Fprintf(&b, " (renewed %s ago)", time.Since(renewed).Round(time.Millisecond))
	}
	b.WriteString("\n")
	if gw != nil {
		fmt.Fprintf(&b, "owners: %d  sheds: %d\n", gw.Owners(), gw.Sheds())
		var ages []time.Duration
		if st := gw.Store(); st != nil {
			if st.Healthy() {
				b.WriteString("store: healthy\n")
			} else {
				b.WriteString("store: UNHEALTHY (group commit error latched; affected tenants suspended until restart)\n")
			}
			ages = st.SnapshotAges()
		}
		for _, ss := range gw.ShardStatuses() {
			fmt.Fprintf(&b, "shard %d: committed=%d pending_wal=%d", ss.Shard, ss.Committed, ss.PendingWAL)
			if ss.Shard < len(ages) {
				if ages[ss.Shard] < 0 {
					b.WriteString(" last_snapshot=never")
				} else {
					fmt.Fprintf(&b, " last_snapshot=%s ago", ages[ss.Shard].Round(time.Millisecond))
				}
			}
			b.WriteString("\n")
		}
	}
	if hub != nil {
		hs := hub.Stats()
		fmt.Fprintf(&b, "replication: followers=%d shipped=%d snapshots=%d\n", hs.Followers, hs.Shipped, hs.Snapshots)
		for _, fs := range hub.Followers() {
			fmt.Fprintf(&b, "follower %q: lag=%d entries (%.1f ms) cursors=%v\n", fs.Node, fs.LagEntries, fs.LagMs, fs.Cursors)
		}
	}
	if fol != nil {
		fst := fol.Stats()
		fmt.Fprintf(&b, "replica: applied=%d snapshot_transfers=%d\n", fst.Applied, fst.Snapshots)
		if lc := fol.lastContact.Load(); lc != 0 {
			fmt.Fprintf(&b, "last primary contact: %.1f ms ago\n", float64(time.Now().UnixNano()-lc)/1e6)
		}
	} else if gw == nil {
		fmt.Fprintf(&b, "replica (sealed): applied=%d snapshot_transfers=%d\n", last.Applied, last.Snapshots)
	}
	if plane != nil {
		lastRead = plane.Stats()
	}
	if plane != nil || lastRead != (ReadPlaneStats{}) {
		fmt.Fprintf(&b, "read plane: queries=%d stale=%d cache_hits=%d cache_misses=%d rebuilds=%d\n",
			lastRead.Queries, lastRead.Stale, lastRead.CacheHits, lastRead.CacheMisses, lastRead.Rebuilds)
	}
	return b.String()
}

// Ready implements telemetry.Status with real semantics: a primary is ready
// when it still holds the lease and its WAL writer is healthy; a follower
// when it is replicating within its lag bound (frames from the primary within
// the link-death deadline the tail loop itself uses).
func (n *Node) Ready() (bool, string) {
	n.mu.Lock()
	role, holder, renewed := n.role, n.leaseHolder, n.leaseRenewed
	gw, fol, closed := n.gw, n.fol, n.closed
	n.mu.Unlock()
	if closed {
		return false, "node closed"
	}
	if role == RolePrimary {
		if gw == nil {
			return false, "primary without a gateway"
		}
		if n.cfg.Lease != nil {
			if holder != n.cfg.NodeID {
				return false, fmt.Sprintf("lease held by %q", holder)
			}
			if time.Since(renewed) > n.cfg.LeaseTTL {
				return false, fmt.Sprintf("lease renewal stale by %s", time.Since(renewed).Round(time.Millisecond))
			}
		}
		if st := gw.Store(); st != nil && !st.Healthy() {
			return false, "WAL writer reported a commit error"
		}
		return true, "primary: lease held, WAL healthy"
	}
	if fol == nil {
		return false, "follower not replicating"
	}
	bound := 6 * n.cfg.Heartbeat
	if bound < time.Second {
		bound = time.Second
	}
	lc := fol.lastContact.Load()
	if lc == 0 {
		return false, "no primary contact yet"
	}
	if age := time.Duration(time.Now().UnixNano() - lc); age > bound {
		return false, fmt.Sprintf("primary silent for %s (bound %s)", age.Round(time.Millisecond), bound)
	}
	return true, "follower: replicating within lag bound"
}

// startPrimary stands the serving stack up on the node's listener: hub,
// gateway (recovering whatever the store directory holds), bind, serve,
// renew. Used by Start (initial primary) and by promotion.
func (n *Node) startPrimary() error {
	// Hub and gateway events carry the node ID; the node's own log lines
	// attach it per call, so the shared logger itself stays unadorned.
	hub := NewHub(HubConfig{RingSize: n.cfg.RingSize, Heartbeat: n.cfg.Heartbeat,
		Logger: n.log.With("node", n.cfg.NodeID), Telemetry: n.cfg.Telemetry})
	gwCfg := n.cfg.Gateway
	gwCfg.StoreDir = n.cfg.StoreDir
	gwCfg.Listener = n.lis
	gwCfg.Replicator = hub
	if gwCfg.Telemetry == nil {
		gwCfg.Telemetry = n.cfg.Telemetry
	}
	if gwCfg.Logger == nil {
		gwCfg.Logger = n.log.With("node", n.cfg.NodeID)
	}
	gw, err := gateway.New("", gwCfg)
	if err != nil {
		return err
	}
	if err := hub.Bind(gw); err != nil {
		gw.Kill()
		return err
	}
	n.mu.Lock()
	if n.closed {
		// Shutdown raced the promotion: the node must not start serving now.
		// Kill the just-built stack; the store directory stays a valid image.
		n.mu.Unlock()
		hub.Close()
		gw.Kill()
		return fmt.Errorf("cluster: node closed during promotion")
	}
	n.role, n.gw, n.hub = RolePrimary, gw, hub
	n.mu.Unlock()
	n.wg.Add(2)
	go func() {
		defer n.wg.Done()
		_ = gw.Serve()
	}()
	go n.renewLoop(gw, hub)
	n.promotedOnce.Do(func() { close(n.promoted) })
	n.log.Info("serving as primary", "node", n.cfg.NodeID, "addr", n.Addr())
	return nil
}

// renewLoop keeps the primary's lease alive and fences on loss: a refused
// renewal means the arbiter may let someone else serve, so the gateway is
// killed — crash semantics — before that can happen. On a graceful gateway
// close the lease is released so the successor need not wait out the TTL.
func (n *Node) renewLoop(gw *gateway.Gateway, hub *Hub) {
	defer n.wg.Done()
	interval := n.cfg.LeaseTTL / 3
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	for {
		select {
		case <-gw.Closed():
			hub.Close()
			n.mu.Lock()
			killed := n.killed
			n.mu.Unlock()
			if n.cfg.Lease != nil && !killed {
				_ = n.cfg.Lease.Release(n.cfg.NodeID)
			}
			return
		case <-time.After(interval):
			if n.cfg.Lease == nil {
				continue
			}
			st, ok, err := n.cfg.Lease.Acquire(n.cfg.NodeID, n.Addr(), n.cfg.LeaseTTL)
			if err != nil {
				// Arbiter unreachable: keep serving. Nobody else can acquire
				// through the same arbiter, so the TTL still fences.
				n.log.Warn("lease renewal error", "node", n.cfg.NodeID, "err", err)
				continue
			}
			if !ok {
				n.log.Warn("lost the lease; fencing", "node", n.cfg.NodeID, "holder", st.Holder)
				n.recordLease(st.Holder, false)
				n.tm.losses.Inc()
				hub.Close()
				gw.Kill()
				return
			}
			n.recordLease(n.cfg.NodeID, true)
		}
	}
}

// runFollower is the follower role loop: refuse clients on the bound
// listener, tail whoever holds the lease, campaign when it lapses, and
// promote on a win.
func (n *Node) runFollower() {
	defer n.wg.Done()
	stopRefuse := make(chan struct{})
	refuseDone := make(chan struct{})
	go n.refuseLoop(stopRefuse, refuseDone)
	readTO := 6 * n.cfg.Heartbeat
	if readTO < time.Second {
		readTO = time.Second
	}
	stagger := campaignStagger(n.cfg.NodeID, n.cfg.LeaseTTL)
	backoff := 5 * time.Millisecond
	for {
		select {
		case <-n.quit:
			close(stopRefuse)
			<-refuseDone
			n.sealFollower()
			return
		default:
		}
		primary := n.cfg.ReplicaOf
		if primary == "" {
			st, won, err := n.cfg.Lease.Acquire(n.cfg.NodeID, n.Addr(), n.cfg.LeaseTTL)
			if err != nil {
				n.log.Warn("campaign error", "node", n.cfg.NodeID, "err", err)
				n.sleep(backoff)
				continue
			}
			if won {
				n.recordLease(n.cfg.NodeID, true)
				close(stopRefuse)
				<-refuseDone
				if err := n.promote(); err != nil {
					n.log.Error("promotion failed", "node", n.cfg.NodeID, "err", err)
					_ = n.cfg.Lease.Release(n.cfg.NodeID)
					n.lis.Close()
				}
				return
			}
			n.recordLease(st.Holder, false)
			primary = st.Addr
		}
		if primary == "" || primary == n.Addr() {
			n.sleep(backoff)
			continue
		}
		conn, err := n.cfg.Dialer(primary)
		if err != nil {
			// Primary gone or partitioned: wait the staggered beat before the
			// next campaign/dial round so concurrent campaigners interleave.
			n.sleep(backoff + stagger)
			if backoff *= 2; backoff > 200*time.Millisecond {
				backoff = 200 * time.Millisecond
			}
			continue
		}
		n.mu.Lock()
		fol := n.fol
		n.tailConn = conn
		n.mu.Unlock()
		if fol == nil { // Kill raced the dial; the replica is gone
			conn.Close()
			return
		}
		start := time.Now()
		err = fol.tail(conn, n.cfg.NodeID, readTO)
		conn.Close()
		n.mu.Lock()
		n.tailConn = nil
		n.mu.Unlock()
		if time.Since(start) > time.Second {
			backoff = 5 * time.Millisecond
		}
		select {
		case <-n.quit:
		default:
			n.log.Info("replication session ended", "node", n.cfg.NodeID, "err", err)
		}
	}
}

// sleep waits d or until the node is told to stop.
func (n *Node) sleep(d time.Duration) {
	select {
	case <-time.After(d):
	case <-n.quit:
	}
}

// refuseLoop answers hellos on the follower's listener with the typed
// refusal, so clients and followers probing a non-primary move on instead
// of hanging. It polls the listener deadline so promotion can reclaim the
// listener without closing it.
func (n *Node) refuseLoop(stop, done chan struct{}) {
	defer close(done)
	tcp, _ := n.lis.(*net.TCPListener)
	for {
		select {
		case <-stop:
			if tcp != nil {
				_ = tcp.SetDeadline(time.Time{})
			}
			return
		default:
		}
		if tcp != nil {
			_ = tcp.SetDeadline(time.Now().Add(refusePollInterval))
		}
		conn, err := n.lis.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return // listener closed: node shutting down
		}
		go func() {
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
			kind, proposed, err := wire.ReadAnyHello(conn)
			if err != nil {
				return
			}
			if kind == wire.HelloRead {
				// Read-only hello: hand the connection to the read plane,
				// which serves queries from the replicated store instead of
				// refusing. Sync hellos keep the typed refusal below.
				n.mu.Lock()
				plane := n.plane
				n.mu.Unlock()
				if plane != nil {
					_ = conn.SetDeadline(time.Time{})
					plane.serve(conn, proposed)
					return
				}
			}
			_ = wire.WriteHelloRefused(conn)
		}()
	}
}

// promote turns the follower into the primary: seal the replicated prefix
// (drain replica WAL appends, close the store — everything beyond it lives
// in clients' resync windows) and recover a serving gateway over the same
// directory on the same listener.
func (n *Node) promote() error {
	n.mu.Lock()
	fol := n.fol
	plane := n.plane
	n.plane = nil
	n.mu.Unlock()
	if plane != nil {
		// No read request may touch the store once sealing starts; the
		// plane's counters survive in lastRead for status continuity.
		plane.shutdown()
		n.mu.Lock()
		n.lastRead = plane.Stats()
		n.mu.Unlock()
	}
	if err := fol.seal(); err != nil {
		// The directory still holds the longest provable prefix; promote it.
		n.log.Warn("sealing replica failed; promoting committed prefix", "node", n.cfg.NodeID, "err", err)
	}
	n.mu.Lock()
	n.lastFol = fol.Stats()
	n.fol = nil
	n.mu.Unlock()
	n.log.Info("promoting", "node", n.cfg.NodeID, "addr", n.Addr())
	n.tm.promotions.Inc()
	return n.startPrimary()
}

// sealFollower closes the replica gracefully (quiesce + store close) at
// node shutdown.
func (n *Node) sealFollower() {
	n.mu.Lock()
	fol := n.fol
	plane := n.plane
	n.fol, n.plane = nil, nil
	if fol != nil {
		n.lastFol = fol.Stats()
	}
	n.mu.Unlock()
	if plane != nil {
		plane.shutdown()
		n.mu.Lock()
		n.lastRead = plane.Stats()
		n.mu.Unlock()
	}
	if fol == nil {
		return
	}
	if err := fol.seal(); err != nil {
		n.log.Warn("sealing replica at shutdown failed", "node", n.cfg.NodeID, "err", err)
	}
}

// Close shuts the node down gracefully: a primary drains its gateway
// (bounded by DrainTimeout) and releases the lease; a follower seals its
// replica. Safe to call in any role and more than once.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	gw := n.gw
	conn := n.tailConn
	n.mu.Unlock()
	close(n.quit)
	var err error
	if gw != nil {
		err = gw.Close() // renewLoop releases the lease and closes the hub
	} else {
		n.lis.Close()
		if conn != nil {
			conn.Close()
		}
		if n.cfg.Lease != nil {
			_ = n.cfg.Lease.Release(n.cfg.NodeID)
		}
	}
	n.wg.Wait()
	if n.tm.unreg != nil {
		n.tm.unreg()
	}
	return err
}

// Kill stops the node the way a crash would: connections severed, pending
// work abandoned, the lease left to expire (the successor must wait out the
// TTL — that is the failover the harness measures).
func (n *Node) Kill() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed, n.killed = true, true
	gw := n.gw
	hub := n.hub
	conn := n.tailConn
	fol := n.fol
	plane := n.plane
	n.fol, n.plane = nil, nil
	if fol != nil {
		n.lastFol = fol.Stats()
	}
	n.mu.Unlock()
	close(n.quit)
	if gw != nil {
		if hub != nil {
			hub.Close()
		}
		gw.Kill()
	} else {
		n.lis.Close()
		if conn != nil {
			conn.Close()
		}
		if plane != nil {
			plane.shutdown()
			n.mu.Lock()
			n.lastRead = plane.Stats()
			n.mu.Unlock()
		}
		if fol != nil {
			fol.kill()
		}
	}
	n.wg.Wait()
	if n.tm.unreg != nil {
		n.tm.unreg()
	}
}
