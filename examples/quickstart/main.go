// Quickstart: outsource a growing database with a differentially private
// update pattern in ~40 lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dpsync"
)

func main() {
	// 1. Pick an encrypted database. ObliDB is the bundled L-0 (oblivious,
	//    volume-hiding) substrate.
	db, err := dpsync.NewObliDB()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Pick a synchronization strategy. DP-Timer syncs every T=30 ticks
	//    with Laplace-noised volumes; the whole update pattern is ε-DP.
	strat, err := dpsync.NewDPTimer(dpsync.TimerConfig{
		Epsilon:       0.5,
		Period:        30,
		FlushInterval: 2000,
		FlushSize:     15,
		Source:        dpsync.SeededNoise(42), // deterministic demo; omit in production
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Assemble the owner and outsource the (empty) initial database.
	owner, err := dpsync.New(dpsync.Config{Database: db, Strategy: strat})
	if err != nil {
		log.Fatal(err)
	}
	if err := owner.Setup(nil); err != nil {
		log.Fatal(err)
	}

	// 4. Live life: one tick per time unit, sometimes a record arrives.
	//    The owner caches arrivals; uploads happen on the noisy schedule.
	for t := 1; t <= 300; t++ {
		if t%7 == 0 { // a taxi pickup every 7 minutes
			err = owner.Tick(dpsync.Record{
				PickupTime: dpsync.Tick(t),
				PickupID:   uint16(t%dpsync.NumLocations + 1),
				Provider:   dpsync.YellowCab,
			})
		} else {
			err = owner.Tick()
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	// 5. Query like the analyst would.
	ans, cost, err := owner.Query(dpsync.Q2())
	if err != nil {
		log.Fatal(err)
	}
	truth, err := owner.Truth(dpsync.Q2())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("records received by owner:   %d\n", owner.LogicalSize())
	fmt.Printf("records on server (real):    %d\n", owner.UploadedReal())
	fmt.Printf("logical gap (still cached):  %d\n", owner.LogicalGap())
	fmt.Printf("Q2 answer total:             %.0f (truth %.0f, L1 error %.0f)\n",
		ans.Total(), truth.Total(), ans.L1(truth))
	fmt.Printf("modeled query time:          %.3fs over %d ciphertexts\n",
		cost.Seconds, cost.RecordsScanned)
	fmt.Printf("what the server observed:    %d uploads, %d ciphertexts total\n",
		owner.Pattern().Updates(), owner.Pattern().TotalVolume())
	fmt.Printf("update pattern transcript:   %s\n", owner.Pattern())
}
