// Multi-owner: eight independent data owners with mixed synchronization
// strategies (SUR / DP-Timer / DP-ANT), all hiding their update patterns
// against ONE multi-tenant gateway over ONE pipelined TCP connection.
//
// This is the paper's deployment story at (miniature) scale: each owner has
// a private namespace on the shared server — its own sealed store, its own
// update-pattern transcript, its own logical clock — and the gateway
// operator observes exactly the union of per-owner transcripts, each
// independently carrying its owner's ε guarantee. SUR owners leak their
// event streams; the DP owners don't.
//
// Run with:
//
//	go run ./examples/multi-owner
package main

import (
	"fmt"
	"log"

	"dpsync/internal/client"
	"dpsync/internal/core"
	"dpsync/internal/dp"
	"dpsync/internal/gateway"
	"dpsync/internal/query"
	"dpsync/internal/record"
	"dpsync/internal/seal"
	"dpsync/internal/strategy"
)

func main() {
	// 1. One gateway, standing in for the outsourced cloud server. The key
	//    is the enclave attestation/provisioning stand-in, shared with the
	//    owners.
	key, err := seal.NewRandomKey()
	if err != nil {
		log.Fatal(err)
	}
	gw, err := gateway.New("127.0.0.1:0", gateway.Config{Key: key})
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = gw.Serve() }()
	defer gw.Close()

	// 2. One pipelined connection carrying all eight owners' traffic
	//    (request IDs multiplex them; the binary codec is negotiated).
	conn, err := client.DialGateway(gw.Addr(), key)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// 3. Eight owners, cycling the strategy mix. Each gets its own
	//    namespace ("owner-0" ... "owner-7") and therefore its own
	//    transcript on the gateway.
	type tenant struct {
		name  string
		strat string
		owner *core.Owner
	}
	var tenants []tenant
	for i := 0; i < 8; i++ {
		var (
			strat strategy.Strategy
			label string
		)
		switch i % 3 {
		case 0:
			strat, label = strategy.NewSUR(), "SUR"
		case 1:
			s, err := strategy.NewTimer(strategy.TimerConfig{
				Epsilon: 0.5, Period: 30, FlushInterval: 200, FlushSize: 5,
				Source: dp.NewSeededSource(uint64(100 + i)),
			})
			if err != nil {
				log.Fatal(err)
			}
			strat, label = s, "DP-Timer"
		default:
			s, err := strategy.NewANT(strategy.ANTConfig{
				Epsilon: 0.5, Threshold: 8, FlushInterval: 200, FlushSize: 5,
				Source: dp.NewSeededSource(uint64(200 + i)),
			})
			if err != nil {
				log.Fatal(err)
			}
			strat, label = s, "DP-ANT"
		}
		name := fmt.Sprintf("owner-%d", i)
		owner, err := core.New(core.Config{Strategy: strat, Database: conn.Owner(name)})
		if err != nil {
			log.Fatal(err)
		}
		if err := owner.Setup(nil); err != nil {
			log.Fatal(err)
		}
		tenants = append(tenants, tenant{name, label, owner})
	}

	// 4. Live 600 ticks. Owner i receives a record every 2+i ticks — eight
	//    different event streams, interleaved on the shared connection.
	for t := 1; t <= 600; t++ {
		for i, tn := range tenants {
			var err error
			if t%(2+i) == 0 {
				err = tn.owner.Tick(record.Record{
					PickupTime: record.Tick(t),
					PickupID:   uint16((13*t+i)%record.NumLocations + 1),
					Provider:   record.YellowCab,
				})
			} else {
				err = tn.owner.Tick()
			}
			if err != nil {
				log.Fatal(err)
			}
		}
	}

	// 5. What did each owner achieve, and what did the operator see?
	fmt.Printf("%-9s %-9s %8s %8s %8s %10s %9s\n",
		"owner", "strategy", "ε", "events", "uploads", "Q1 error", "gap")
	for _, tn := range tenants {
		qe, _, err := tn.owner.QueryError(query.Q1())
		if err != nil {
			log.Fatal(err)
		}
		pat := gw.ObservedPattern(tn.name)
		eps := fmt.Sprintf("%.1f", tn.owner.Strategy().Epsilon())
		if tn.strat == "SUR" {
			eps = "∞"
		}
		fmt.Printf("%-9s %-9s %8s %8d %8d %10.1f %9d\n",
			tn.name, tn.strat, eps, tn.owner.LogicalSize(), pat.Updates(),
			qe, tn.owner.LogicalGap())
	}

	// 6. The isolation invariant, concretely: the SUR owner's transcript is
	//    its exact event stream; a DP-Timer owner's is a fixed-period,
	//    noisy-volume schedule — and neither contains a trace of the other.
	fmt.Printf("\noperator's view of %s (SUR, leaks everything): %d upload events\n",
		tenants[0].name, gw.ObservedPattern(tenants[0].name).Updates())
	p1 := gw.ObservedPattern(tenants[1].name)
	fmt.Printf("operator's view of %s (DP-Timer, ε=0.5): %d upload events, first few: ", tenants[1].name, p1.Updates())
	for i, e := range p1.Events {
		if i >= 4 {
			break
		}
		fmt.Printf("(#%d, %d) ", e.Tick, e.Volume)
	}
	fmt.Println()
}
