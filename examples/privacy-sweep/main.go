// Privacy sweep: how to choose ε, T and θ — the paper's Figures 5 and 6 as
// a tuning walkthrough.
//
// The sweep replays the same workload under DP-Timer and DP-ANT across a
// grid of privacy budgets, then across the non-privacy knobs, and prints
// the resulting accuracy/overhead curves. Two paper observations to watch:
//
//   - Observation 4: as ε grows, DP-Timer's error falls, but DP-ANT's error
//     *rises* — with large noise (small ε) ANT trips its threshold early and
//     syncs more often, accidentally improving freshness.
//   - Observation 6: with ε fixed, growing T or θ trades accuracy for fewer
//     dummies (less performance overhead).
//
// Run with:
//
//	go run ./examples/privacy-sweep
package main

import (
	"fmt"
	"log"

	"dpsync"
)

const (
	horizon = dpsync.Tick(2160)
	records = 920
	qEvery  = 90
)

func main() {
	trace, err := dpsync.GenerateTrace(dpsync.TraceConfig{
		Provider: dpsync.YellowCab,
		Horizon:  horizon,
		Records:  records,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Sweep 1: privacy budget eps (T=30 / theta=15 fixed) ===")
	fmt.Printf("%-8s %-22s %-22s\n", "eps", "DP-Timer err/dummies", "DP-ANT err/dummies")
	for _, eps := range []float64{0.01, 0.1, 0.5, 2, 10} {
		tErr, tDum := run(trace, func(seed uint64) (dpsync.Strategy, error) {
			return dpsync.NewDPTimer(dpsync.TimerConfig{
				Epsilon: eps, Period: 30, FlushInterval: 500, FlushSize: 15,
				Source: dpsync.SeededNoise(seed),
			})
		})
		aErr, aDum := run(trace, func(seed uint64) (dpsync.Strategy, error) {
			return dpsync.NewDPANT(dpsync.ANTConfig{
				Epsilon: eps, Threshold: 15, FlushInterval: 500, FlushSize: 15,
				Source: dpsync.SeededNoise(seed + 100),
			})
		})
		fmt.Printf("%-8g %-8.2f/%-13d %-8.2f/%-13d\n", eps, tErr, tDum, aErr, aDum)
	}

	fmt.Println()
	fmt.Println("=== Sweep 2: DP-Timer period T (eps=0.5 fixed) ===")
	fmt.Printf("%-8s %-12s %-10s\n", "T", "mean err", "dummies")
	for _, T := range []dpsync.Tick{5, 15, 30, 120, 480} {
		errV, dum := run(trace, func(seed uint64) (dpsync.Strategy, error) {
			return dpsync.NewDPTimer(dpsync.TimerConfig{
				Epsilon: 0.5, Period: T, FlushInterval: 500, FlushSize: 15,
				Source: dpsync.SeededNoise(seed + 200),
			})
		})
		fmt.Printf("%-8d %-12.2f %-10d\n", T, errV, dum)
	}

	fmt.Println()
	fmt.Println("=== Sweep 3: DP-ANT threshold theta (eps=0.5 fixed) ===")
	fmt.Printf("%-8s %-12s %-10s\n", "theta", "mean err", "dummies")
	for _, th := range []float64{2, 8, 15, 60, 240} {
		errV, dum := run(trace, func(seed uint64) (dpsync.Strategy, error) {
			return dpsync.NewDPANT(dpsync.ANTConfig{
				Epsilon: 0.5, Threshold: th, FlushInterval: 500, FlushSize: 15,
				Source: dpsync.SeededNoise(seed + 300),
			})
		})
		fmt.Printf("%-8g %-12.2f %-10d\n", th, errV, dum)
	}

	fmt.Println()
	fmt.Println("Rule of thumb: pick the largest eps your privacy policy tolerates, then")
	fmt.Println("raise T (or theta) until query error approaches your accuracy budget —")
	fmt.Println("every extra tick of delay buys fewer dummies and faster queries.")
}

// run replays the trace under one strategy, reporting mean Q2 error and the
// dummy-record overhead. Averaged over three noise seeds to steady the
// small-scale numbers.
func run(trace *dpsync.Trace, build func(seed uint64) (dpsync.Strategy, error)) (float64, int) {
	var errSum float64
	var dumSum, n int
	for seed := uint64(1); seed <= 3; seed++ {
		strat, err := build(seed)
		if err != nil {
			log.Fatal(err)
		}
		db, err := dpsync.NewObliDB()
		if err != nil {
			log.Fatal(err)
		}
		owner, err := dpsync.New(dpsync.Config{Database: db, Strategy: strat})
		if err != nil {
			log.Fatal(err)
		}
		if err := owner.Setup(nil); err != nil {
			log.Fatal(err)
		}
		for t := dpsync.Tick(1); t <= horizon; t++ {
			var terr error
			if r, ok := trace.ArrivalAt(t); ok {
				terr = owner.Tick(r)
			} else {
				terr = owner.Tick()
			}
			if terr != nil {
				log.Fatal(terr)
			}
			if t%qEvery == 0 {
				qe, _, err := owner.QueryError(dpsync.Q2())
				if err != nil {
					log.Fatal(err)
				}
				errSum += qe
				n++
			}
		}
		dumSum += owner.DB().Stats().DummyRecords
	}
	return errSum / float64(n), dumSum / 3
}
