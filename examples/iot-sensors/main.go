// IoT sensors: the paper's §1 motivating attack, made concrete.
//
// A building has three floors; floor 3 is the only one with three sensors
// spaced a 10-tick walk apart. Sensor events are backed up to an encrypted
// database run by the building admin. Contents are encrypted — but if the
// owner syncs upon receipt (SUR), the admin sees *when* backups happen and
// can read a resident's path off the upload times alone.
//
// This example mounts that attack against SUR, shows it succeeding, then
// re-runs the same morning under DP-Timer and shows the attack losing its
// signal.
//
// Run with:
//
//	go run ./examples/iot-sensors
package main

import (
	"fmt"
	"log"

	"dpsync"
)

// floorSignature is the admin's side information: floor 3 produces three
// events exactly 10 ticks apart.
const walkDelay = 10

func main() {
	fmt.Println("=== The update-pattern attack (paper §1) ===")
	fmt.Println()

	// 7:00 AM: one person enters and walks across floor 3, tripping three
	// sensors at ticks 100, 110, 120.
	events := []dpsync.Tick{100, 110, 120}

	fmt.Println("--- Owner syncs upon receipt (SUR) ---")
	pattern := replayMorning(dpsync.NewSUR(), events, 0)
	attack("admin", pattern)

	fmt.Println()
	fmt.Println("--- Owner syncs under DP-Timer (eps=0.5, T=30) ---")
	strat, err := dpsync.NewDPTimer(dpsync.TimerConfig{
		Epsilon: 0.5, Period: 30, Source: dpsync.SeededNoise(7),
	})
	if err != nil {
		log.Fatal(err)
	}
	pattern = replayMorning(strat, events, 0)
	attack("admin", pattern)

	fmt.Println()
	fmt.Println("The DP-Timer pattern is a fixed 30-tick grid with noisy volumes —")
	fmt.Println("the same transcript distribution whether the resident went to floor 3,")
	fmt.Println("another floor, or stayed home (ε-indistinguishable by Definition 5).")
}

// replayMorning runs 240 ticks of a morning with the given sensor events
// and returns the update-pattern transcript the admin observes.
func replayMorning(strat dpsync.Strategy, events []dpsync.Tick, seed uint64) *dpsync.UpdatePattern {
	db, err := dpsync.NewObliDB()
	if err != nil {
		log.Fatal(err)
	}
	owner, err := dpsync.New(dpsync.Config{Database: db, Strategy: strat})
	if err != nil {
		log.Fatal(err)
	}
	if err := owner.Setup(nil); err != nil {
		log.Fatal(err)
	}
	isEvent := map[dpsync.Tick]bool{}
	for _, e := range events {
		isEvent[e] = true
	}
	for t := dpsync.Tick(1); t <= 240; t++ {
		var terr error
		if isEvent[t] {
			terr = owner.Tick(dpsync.Record{
				PickupTime: t,
				PickupID:   uint16(t%dpsync.NumLocations + 1),
				Provider:   dpsync.YellowCab,
			})
		} else {
			terr = owner.Tick()
		}
		if terr != nil {
			log.Fatal(terr)
		}
	}
	fmt.Printf("server-observed pattern: %s\n", owner.Pattern())
	return owner.Pattern()
}

// attack is the admin's inference: find three non-flush uploads spaced
// exactly walkDelay apart — the floor-3 signature.
func attack(who string, p *dpsync.UpdatePattern) {
	times := p.Times()
	for i := 0; i+2 < len(times); i++ {
		if times[i+1]-times[i] == walkDelay && times[i+2]-times[i+1] == walkDelay {
			fmt.Printf("%s: three uploads at %d, %d, %d — 10 ticks apart.\n",
				who, times[i], times[i+1], times[i+2])
			fmt.Printf("%s: only floor 3 has that sensor spacing. The resident went to FLOOR 3.\n", who)
			return
		}
	}
	fmt.Printf("%s: no floor signature in the upload times; inference FAILED.\n", who)
}
