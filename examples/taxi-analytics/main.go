// Taxi analytics: a miniature of the paper's §8 end-to-end comparison.
//
// A fleet operator streams taxi pickups to an encrypted cloud database
// while a city analyst runs counting queries. This example replays a
// scaled-down June (2,160 ticks = 1.5 days) under all five synchronization
// strategies and prints the accuracy/performance/privacy triangle that is
// the paper's Figure 4.
//
// Run with:
//
//	go run ./examples/taxi-analytics
package main

import (
	"fmt"
	"log"
	"math"

	"dpsync"
)

const (
	horizon = dpsync.Tick(2160) // 1.5 days of one-minute ticks
	records = 920               // Yellow density scaled to the horizon
)

func main() {
	trace, err := dpsync.GenerateTrace(dpsync.TraceConfig{
		Provider: dpsync.YellowCab,
		Horizon:  horizon,
		Records:  records,
		Seed:     2026,
	})
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name    string
		privacy string
		meanErr float64
		meanQET float64
		dummies int
	}
	var rows []row

	for _, s := range []struct {
		name    string
		privacy string
		build   func() (dpsync.Strategy, error)
	}{
		{"SUR", "none (inf-DP)", func() (dpsync.Strategy, error) { return dpsync.NewSUR(), nil }},
		{"SET", "perfect (0-DP)", func() (dpsync.Strategy, error) { return dpsync.NewSET(), nil }},
		{"OTO", "perfect (0-DP)", func() (dpsync.Strategy, error) { return dpsync.NewOTO(), nil }},
		{"DP-Timer", "eps=0.5", func() (dpsync.Strategy, error) {
			cfg := dpsync.DefaultTimerConfig()
			cfg.FlushInterval = 500
			cfg.Source = dpsync.SeededNoise(11)
			return dpsync.NewDPTimer(cfg)
		}},
		{"DP-ANT", "eps=0.5", func() (dpsync.Strategy, error) {
			cfg := dpsync.DefaultANTConfig()
			cfg.FlushInterval = 500
			cfg.Source = dpsync.SeededNoise(12)
			return dpsync.NewDPANT(cfg)
		}},
	} {
		strat, err := s.build()
		if err != nil {
			log.Fatal(err)
		}
		meanErr, meanQET, dummies := replay(trace, strat)
		rows = append(rows, row{s.name, s.privacy, meanErr, meanQET, dummies})
	}

	fmt.Println("Strategy    Privacy          mean Q2 err   mean QET(s)   dummies")
	fmt.Println("--------    -------          -----------   -----------   -------")
	for _, r := range rows {
		fmt.Printf("%-11s %-16s %-13.2f %-13.3f %d\n",
			r.name, r.privacy, r.meanErr, r.meanQET, r.dummies)
	}
	fmt.Println()
	fmt.Println("Reading the triangle (paper Fig. 4):")
	fmt.Println("  SUR: accurate + fast, zero privacy.")
	fmt.Println("  SET: accurate + private, slow (every idle tick uploads a dummy).")
	fmt.Println("  OTO: fast + private, wildly inaccurate (nothing after setup).")
	fmt.Println("  DP-Timer / DP-ANT: near-SUR accuracy and speed, bounded eps-DP leakage.")
}

// replay drives one strategy over the trace, querying Q2 every 90 ticks.
func replay(trace *dpsync.Trace, strat dpsync.Strategy) (meanErr, meanQET float64, dummies int) {
	db, err := dpsync.NewObliDB()
	if err != nil {
		log.Fatal(err)
	}
	owner, err := dpsync.New(dpsync.Config{Database: db, Strategy: strat})
	if err != nil {
		log.Fatal(err)
	}
	if err := owner.Setup(nil); err != nil {
		log.Fatal(err)
	}
	var errSum, qetSum float64
	var n int
	for t := dpsync.Tick(1); t <= horizon; t++ {
		var terr error
		if r, ok := trace.ArrivalAt(t); ok {
			terr = owner.Tick(r)
		} else {
			terr = owner.Tick()
		}
		if terr != nil {
			log.Fatal(terr)
		}
		if t%90 == 0 {
			qe, cost, err := owner.QueryError(dpsync.Q2())
			if err != nil {
				log.Fatal(err)
			}
			if math.IsInf(qe, 0) {
				log.Fatal("mismatched answer shapes")
			}
			errSum += qe
			qetSum += cost.Seconds
			n++
		}
	}
	stats := owner.DB().Stats()
	return errSum / float64(n), qetSum / float64(n), stats.DummyRecords
}
